/**
 * @file
 * Extension experiment (beyond the paper): multi-context CBWS on
 * interleaved tight loops.
 *
 * The paper's hardware holds a single block context (Fig. 9 clears
 * the tracking state when the static block id changes). This bench
 * builds a "zipper" workload — two tight streaming loops whose
 * iterations alternate under a short outer loop, a shape produced by
 * ping-pong buffering or loosely fused kernels — and compares the
 * paper's single-context unit with the multi-context extension, both
 * standalone and with end-to-end timing.
 *
 * Also sweeps the context count and the interleave granularity.
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"
#include "core/multi_context.hh"
#include "workloads/emitter.hh"

using namespace cbws;

namespace
{

/**
 * The zipper workload: `burst` iterations of loop A (stride-1 lines,
 * stream X), then `burst` iterations of loop B (stride-4 lines,
 * stream Y), repeating.
 */
class ZipperWorkload : public Workload
{
  public:
    explicit ZipperWorkload(unsigned burst) : burst_(burst) {}

    std::string name() const override
    {
        return "zipper-burst" + std::to_string(burst_);
    }
    std::string suite() const override { return "extension"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 4 * 1024 * 1024;
        const Addr x = e.alloc(n);
        const Addr y = e.alloc(8 * n);
        constexpr RegIndex RI = 1, RV = 3, RA = 5;

        std::uint64_t ia = 0, ib = 0;
        while (!e.full()) {
            for (unsigned k = 0; k < burst_ && !e.full(); ++k, ++ia) {
                e.blockBegin(0, /*id=*/1);
                e.load(1, x + ia * 64, RV, RI);
                e.load(2, x + ia * 64 + 32, RA, RI);
                e.alu(3, RA, RV, RA);
                e.alu(4, RI, RI);
                e.branch(5, k + 1 < burst_, 1, RI);
                e.blockEnd(6, /*id=*/1);
            }
            for (unsigned k = 0; k < burst_ && !e.full(); ++k, ++ib) {
                e.blockBegin(10, /*id=*/2);
                e.load(11, y + ib * 256, RV, RI);
                e.load(12, y + ib * 256 + 64, RA, RI);
                e.fp(13, RA, RV, RA);
                e.alu(14, RI, RI);
                e.branch(15, k + 1 < burst_, 11, RI);
                e.blockEnd(16, /*id=*/2);
            }
        }
    }

  private:
    unsigned burst_;
};

/** Replay a trace's commits straight into a prefetcher and count
 *  table hits / issued lines (predictor-level comparison). */
struct ReplayResult
{
    std::uint64_t hits = 0;
    std::uint64_t issued = 0;
};

ReplayResult
replay(const Trace &trace, Prefetcher &pf, CbwsSchemeStats (*stats)(
                                               Prefetcher &))
{
    class CountSink : public PrefetchSink
    {
      public:
        void issuePrefetch(LineAddr, PfSource) override { ++issued; }
        bool isCached(LineAddr) const override { return false; }
        std::uint64_t issued = 0;
    } sink;

    for (const auto &rec : trace) {
        if (rec.cls == InstClass::BlockBegin)
            pf.blockBegin(rec.blockId, sink);
        else if (rec.cls == InstClass::BlockEnd)
            pf.blockEnd(rec.blockId, sink);
        else if (isMemory(rec.cls)) {
            PrefetchContext ctx;
            ctx.pc = rec.pc;
            ctx.addr = rec.effAddr;
            ctx.line = rec.line();
            pf.observeCommit(ctx, sink);
        }
    }
    ReplayResult r;
    r.hits = stats(pf).tableHits;
    r.issued = sink.issued;
    return r;
}

} // anonymous namespace

int
main()
{
    const std::uint64_t insts = benchInstructionBudget(60000);
    bench::banner("Extension - multi-context CBWS on interleaved "
                  "tight loops",
                  "the single-context limitation of Fig. 9", insts);

    std::printf("-- predictor-level: history-table hits on the "
                "zipper trace --\n");
    TextTable table;
    table.header({"interleave burst", "single-ctx hits",
                  "multi-ctx hits", "single issued",
                  "multi issued"});
    for (unsigned burst : {1u, 2u, 4u, 16u, 64u}) {
        ZipperWorkload workload(burst);
        WorkloadParams params;
        params.maxInstructions = insts;
        Trace trace;
        workload.generate(trace, params);

        CbwsPrefetcher single;
        CbwsMultiContextPrefetcher multi;
        auto single_res =
            replay(trace, single, [](Prefetcher &p) {
                return static_cast<CbwsPrefetcher &>(p)
                    .schemeStats();
            });
        auto multi_res = replay(trace, multi, [](Prefetcher &p) {
            return static_cast<CbwsMultiContextPrefetcher &>(p)
                .aggregateStats();
        });
        table.row({std::to_string(burst),
                   std::to_string(single_res.hits),
                   std::to_string(multi_res.hits),
                   std::to_string(single_res.issued),
                   std::to_string(multi_res.issued)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "With fine interleaving (burst 1-4) the single-context unit "
        "clears its history on\nevery switch and never predicts; "
        "the multi-context extension predicts both\nstreams. At "
        "coarse interleaving (burst 64) the single context recovers "
        "inside each\nburst, shrinking the gap — the extension "
        "matters exactly when loops alternate\ntightly.\n\n");

    std::printf("-- storage --\n");
    CbwsPrefetcher single;
    for (unsigned n : {2u, 4u, 8u}) {
        CbwsMultiContextParams p;
        p.numContexts = n;
        CbwsMultiContextPrefetcher multi(p);
        std::printf("  %u contexts: %llu bits (%.2f KB) vs "
                    "single %.2f KB, SMS %.2f KB\n",
                    n,
                    static_cast<unsigned long long>(
                        multi.storageBits()),
                    multi.storageBits() / 8.0 / 1024.0,
                    single.storageBits() / 8.0 / 1024.0,
                    41536 / 8.0 / 1024.0);
    }
    return 0;
}
