/**
 * @file
 * Extension experiment (beyond the paper): prefetch benefit on an
 * in-order core.
 *
 * The paper evaluates a 4-wide out-of-order core, whose 128-entry ROB
 * already tolerates some memory latency. An in-order, stall-on-use
 * core has no such tolerance, so the same prefetchers should matter
 * *more* — the regime the related work's B-Fetch targets. This bench
 * runs a subset of the memory-intensive benchmarks on both core
 * models and reports the relative speedup each prefetcher provides
 * over no-prefetching on each core.
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"
#include "workloads/registry.hh"

using namespace cbws;

int
main()
{
    const std::uint64_t insts = benchInstructionBudget(80000);
    bench::banner("Extension - prefetch benefit: in-order vs "
                  "out-of-order core",
                  "the Table II core parameters (OoO) vs a scalar "
                  "stall-on-use core",
                  insts);

    const char *names[] = {"stencil-default", "sgemm-medium",
                           "462.libquantum-ref", "nw",
                           "lu-ncb-simlarge", "histo-large"};
    const char *schemes[] = {"SMS", "CBWS+SMS"};

    TextTable table;
    table.header({"benchmark", "core", "no-pf IPC", "SMS speedup",
                  "CBWS+SMS speedup"});
    for (const char *name : names) {
        auto w = findWorkload(name);
        WorkloadParams params;
        params.maxInstructions = insts;
        Trace trace;
        w->generate(trace, params);

        for (CoreModel model :
             {CoreModel::OutOfOrder, CoreModel::InOrder}) {
            SystemConfig base_cfg;
            base_cfg.coreModel = model;
            SimResult base = simulate(trace, base_cfg, insts,
                                      SimProbes(), insts / 4);
            std::vector<std::string> cells = {
                name,
                model == CoreModel::InOrder ? "in-order" : "OoO",
                TextTable::num(base.ipc(), 3)};
            for (const char *scheme : schemes) {
                SystemConfig cfg;
                cfg.coreModel = model;
                cfg.scheme = scheme;
                SimResult r = simulate(trace, cfg, insts,
                                       SimProbes(), insts / 4);
                cells.push_back(
                    TextTable::num(r.ipc() / base.ipc(), 2) + "x");
            }
            table.row(cells);
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expectation: the same prefetcher produces larger "
                "relative speedups on the\nin-order core, which has "
                "no out-of-order latency tolerance to fall back "
                "on.\n");
    return 0;
}
