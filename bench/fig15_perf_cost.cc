/**
 * @file
 * Regenerates Fig. 15: performance/cost, depicted as IPC per byte
 * fetched from memory, normalised to the no-prefetch configuration
 * (higher is better).
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"

using namespace cbws;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    const std::uint64_t insts = benchInstructionBudget();
    bench::banner("Figure 15 - performance/cost: IPC per DRAM byte "
                  "read, normalised to no-prefetch",
                  "Figure 15", insts);

    auto matrix = bench::fullMatrix(insts);

    TextTable table;
    std::vector<std::string> header = {"benchmark"};
    for (const auto &scheme : matrix.schemes)
        header.push_back(scheme);
    table.header(header);

    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
        const auto &row = matrix.rows[r];
        if (!row.memoryIntensive)
            continue;
        const double base =
            matrix.result(r, "No-Prefetch").perfPerByte();
        std::vector<std::string> cells = {row.workload};
        for (const auto &res : row.byPrefetcher) {
            cells.push_back(
                TextTable::num(base > 0 ? res.perfPerByte() / base
                                        : 0.0,
                               2));
        }
        table.row(cells);
    }
    for (bool mi_only : {true, false}) {
        std::vector<std::string> cells = {
            mi_only ? "geomean-MI" : "geomean-ALL"};
        for (std::size_t k = 0; k < matrix.schemes.size(); ++k) {
            const double g = bench::geomean(
                matrix,
                [&](std::size_t r) {
                    const double base =
                        matrix.result(r, "No-Prefetch")
                            .perfPerByte();
                    return base > 0
                               ? matrix.rows[r]
                                         .byPrefetcher[k]
                                         .perfPerByte() /
                                     base
                               : 0.0;
                },
                mi_only);
            cells.push_back(TextTable::num(g, 2));
        }
        table.row(cells);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper: CBWS+SMS provides the best average performance/cost "
        "(1.64 vs 1.39 for SMS,\nrelative units); for stencil both "
        "differential schemes trade extra traffic for\nspeed.\n");
    return 0;
}
