/**
 * @file
 * Regenerates Table I and Figs. 3-4: the worked example of CBWS
 * construction and differential calculation.
 *
 * Part 1 replays the exact access trace of the paper's Table I and
 * prints the evolving CBWS and differential.
 * Part 2 runs the actual stencil kernel (Fig. 2) and prints the
 * CBWS matrix of consecutive innermost-loop iterations (Fig. 3) and
 * their differential vectors (Fig. 4).
 */

#include <cstdio>
#include <vector>

#include "core/cbws_types.hh"
#include "sim/experiment.hh"
#include "workloads/registry.hh"

using namespace cbws;

namespace
{

void
table1Example()
{
    std::printf("---- Table I: CBWS construction from a 2-block "
                "trace (64 B lines) ----\n");
    struct Access
    {
        const char *op;
        Addr addr;
    };
    const Access block0[] = {{"LD", 0x4800}, {"LD", 0x4804},
                             {"LD", 0xFE50}, {"LD", 0x481C},
                             {"ST", 0xFE50}, {"LD", 0x7FE0},
                             {"ST", 0x7FE0}};
    const Access block1[] = {{"LD", 0x4900}, {"LD", 0x4904},
                             {"LD", 0xFC50}, {"LD", 0x491C},
                             {"ST", 0x7FE0}};

    auto print_cbws = [](const CbwsVector &v) {
        std::printf("{");
        for (std::size_t i = 0; i < v.size(); ++i)
            std::printf("%s%X", i ? "," : "", v[i]);
        std::printf("}");
    };

    CbwsVector cbws0;
    std::printf("%-18s %-8s %-24s\n", "instruction", "line#",
                "CBWS0");
    for (const auto &a : block0) {
        cbws0.push(static_cast<std::uint32_t>(lineOf(a.addr)), 16);
        std::printf("%-3s %-14llX %-8llX ", a.op,
                    static_cast<unsigned long long>(a.addr),
                    static_cast<unsigned long long>(lineOf(a.addr)));
        print_cbws(cbws0);
        std::printf("\n");
    }

    CbwsVector cbws1;
    std::printf("\n%-18s %-8s %-24s %s\n", "instruction", "line#",
                "CBWS1", "delta(0,1)");
    for (const auto &a : block1) {
        cbws1.push(static_cast<std::uint32_t>(lineOf(a.addr)), 16);
        const auto d = CbwsDifferential::between(cbws1, cbws0);
        std::printf("%-3s %-14llX %-8llX ", a.op,
                    static_cast<unsigned long long>(a.addr),
                    static_cast<unsigned long long>(lineOf(a.addr)));
        print_cbws(cbws1);
        std::printf(" {");
        for (std::size_t i = 0; i < d.size(); ++i)
            std::printf("%s%d", i ? "," : "", d[i]);
        std::printf("}\n");
    }
    std::printf("\nPaper Table I: CBWS0 = {120,3F9,1FF}, "
                "CBWS1 = {124,3F1,1FF}, delta = {4,-8,0}.\n\n");
}

void
stencilFigure()
{
    std::printf("---- Figs. 3-4: CBWS matrix of the Stencil inner "
                "loop ----\n");
    auto w = findWorkload("stencil-default");
    WorkloadParams params;
    params.maxInstructions = 4000;
    Trace trace;
    w->generate(trace, params);

    // Collect the CBWSs of consecutive committed iterations straight
    // from the trace (the kernel executes the Fig. 2 code).
    std::vector<CbwsVector> cbwss;
    CbwsVector current;
    bool in_block = false;
    for (const auto &rec : trace) {
        if (rec.cls == InstClass::BlockBegin) {
            current.clear();
            in_block = true;
        } else if (rec.cls == InstClass::BlockEnd) {
            if (in_block)
                cbwss.push_back(current);
            in_block = false;
            if (cbwss.size() >= 64)
                break;
        } else if (in_block && isMemory(rec.cls)) {
            current.push(static_cast<std::uint32_t>(rec.line()), 16);
        }
    }

    // Skip a few warm-up iterations, then print 8 like the paper.
    const std::size_t first = 8;
    std::printf("%-8s | CBWS members (line numbers)\n", "iter");
    for (std::size_t i = first; i < first + 8 && i < cbwss.size();
         ++i) {
        std::printf("CBWS%-4zu | ", i - first);
        for (std::size_t j = 0; j < cbwss[i].size(); ++j)
            std::printf("%8X", cbwss[i][j]);
        std::printf("\n");
    }
    std::printf("\n%-12s | differential (element-wise deltas)\n",
                "pair");
    for (std::size_t i = first + 1;
         i < first + 8 && i < cbwss.size(); ++i) {
        const auto d =
            CbwsDifferential::between(cbwss[i], cbwss[i - 1]);
        std::printf("CBWS%zu-CBWS%-4zu | ", i - first,
                    i - first - 1);
        for (std::size_t j = 0; j < d.size(); ++j)
            std::printf("%8d", d[j]);
        std::printf("\n");
    }
    std::printf("\nPaper Fig. 4: after the two cached coefficient "
                "loads (deltas 0,0), every stream\nadvances by the "
                "same constant line stride each iteration.\n");
}

} // anonymous namespace

int
main()
{
    std::printf("Table I + Figs. 3-4 - CBWS construction worked "
                "example\n\n");
    table1Example();
    stencilFigure();
    return 0;
}
