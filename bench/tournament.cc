/**
 * @file
 * Prefetcher tournament: every registered scheme (the zoo, including
 * the extension prefetchers) raced over every workload family at 1,
 * 2 and 4 cores, then ranked by geomean speedup over No-Prefetch.
 *
 * stdout carries the per-family standings and the final leaderboard
 * (golden-diffed by CI); the full cell matrix lands in
 * BENCH_tournament.json (schema: docs/FORMATS.md) for trend
 * tracking. Both are byte-identical for any --jobs value and across
 * a checkpoint resume.
 */

#include <cstdio>

#include "common.hh"
#include "base/table.hh"
#include "sim/tournament.hh"
#include "workloads/registry.hh"

using namespace cbws;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    const std::uint64_t insts = benchInstructionBudget(60000);
    bench::banner("Prefetcher tournament - the zoo ranked by geomean "
                  "speedup over No-Prefetch",
                  "the Section VI methodology, extended to every "
                  "registered scheme",
                  insts);

    TournamentOptions options;
    options.insts = insts;
    options.config = bench::systemConfig();
    options.matrix = bench::matrixOptions();
    const TournamentResult result =
        runTournament(allWorkloads(), options);

    // Per-family standings at each core count: one row per scheme,
    // in leaderboard order so the strongest schemes read first.
    for (unsigned cores : result.coreCounts) {
        std::printf("-- %u core%s --\n", cores,
                    cores == 1 ? "" : "s");
        TextTable t;
        std::vector<std::string> header = {"scheme"};
        for (const auto &suite : result.suites)
            header.push_back(suite);
        t.header(header);
        for (const auto &entry : result.leaderboard) {
            std::vector<std::string> row = {entry.scheme};
            for (const auto &suite : result.suites) {
                bool found = false;
                for (const auto &cell : result.cells) {
                    if (cell.scheme != entry.scheme ||
                        cell.cores != cores || cell.suite != suite)
                        continue;
                    row.push_back(TextTable::num(cell.speedup, 2) +
                                  "x");
                    found = true;
                    break;
                }
                if (!found)
                    row.push_back("-");
            }
            t.row(row);
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("-- leaderboard (geomean speedup over all workloads "
                "and core counts) --\n");
    std::printf("%s\n", leaderboardTable(result).c_str());

    const std::string json = tournamentJson(result);
    const char *json_path = "BENCH_tournament.json";
    std::FILE *f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::fprintf(stderr, "tournament results written to %s\n",
                 json_path);
    return 0;
}
