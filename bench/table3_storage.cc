/**
 * @file
 * Regenerates Table III (and the Fig. 8 budget): the hardware storage
 * requirements of every evaluated prefetcher, computed from each
 * scheme's live storageBits() accounting.
 */

#include <cstdio>

#include "base/table.hh"
#include "sim/config.hh"

using namespace cbws;

int
main()
{
    std::printf("Table III - hardware storage comparison\n\n");

    TextTable t;
    t.header({"prefetcher", "bits", "KB", "paper"});
    struct Row
    {
        PrefetcherKind kind;
        const char *paper;
    };
    const Row rows[] = {
        {PrefetcherKind::Stride, "2.25 KB"},
        {PrefetcherKind::GhbGDc, "2.25 KB"},
        {PrefetcherKind::GhbPcDc, "3.75 KB"},
        {PrefetcherKind::Sms, "~5 KB"},
        {PrefetcherKind::Cbws, "<1 KB (Fig. 8)"},
        {PrefetcherKind::CbwsSms, "~6 KB (sum)"},
    };
    for (const auto &row : rows) {
        SystemConfig cfg;
        cfg.prefetcher = row.kind;
        auto pf = makePrefetcher(cfg);
        const double kb = pf->storageBits() / 8.0 / 1024.0;
        t.row({pf->name(), std::to_string(pf->storageBits()),
               TextTable::num(kb, 2), row.paper});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("The CBWS budget breaks down per Fig. 8: current "
                "CBWS buffer, 4 predecessor CBWSs,\nincremental "
                "differential buffers, 4 history shift registers "
                "and the 16-entry\ndifferential history table.\n");
    return 0;
}
