/**
 * @file
 * Regenerates Table III (and the Fig. 8 budget): the hardware storage
 * requirements of every evaluated prefetcher, computed from each
 * scheme's live storageBits() accounting.
 */

#include <cstdio>

#include "base/table.hh"
#include "sim/config.hh"

using namespace cbws;

int
main()
{
    std::printf("Table III - hardware storage comparison\n\n");

    TextTable t;
    t.header({"prefetcher", "bits", "KB", "paper"});
    struct Row
    {
        const char *scheme;
        const char *paper;
    };
    const Row rows[] = {
        {"Stride", "2.25 KB"},
        {"GHB-G/DC", "2.25 KB"},
        {"GHB-PC/DC", "3.75 KB"},
        {"SMS", "~5 KB"},
        {"CBWS", "<1 KB (Fig. 8)"},
        {"CBWS+SMS", "~6 KB (sum)"},
    };
    for (const auto &row : rows) {
        SystemConfig cfg;
        cfg.scheme = row.scheme;
        auto pf = makePrefetcher(cfg);
        const double kb = pf->storageBits() / 8.0 / 1024.0;
        t.row({pf->name(), std::to_string(pf->storageBits()),
               TextTable::num(kb, 2), row.paper});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("The CBWS budget breaks down per Fig. 8: current "
                "CBWS buffer, 4 predecessor CBWSs,\nincremental "
                "differential buffers, 4 history shift registers "
                "and the 16-entry\ndifferential history table.\n");
    return 0;
}
