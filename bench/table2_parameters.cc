/**
 * @file
 * Regenerates Table II: the simulated-system parameters, printed from
 * the live defaults so the table can never drift from the code.
 */

#include <cstdio>

#include "base/table.hh"
#include "sim/config.hh"

using namespace cbws;

int
main()
{
    std::printf("Table II - simulation parameters (live defaults)\n\n");
    SystemConfig c;

    TextTable t;
    t.header({"parameter", "value"});
    t.row({"OoO width", std::to_string(c.core.width)});
    t.row({"ROB entries", std::to_string(c.core.robSize)});
    t.row({"LDQ entries", std::to_string(c.core.ldqSize)});
    t.row({"STQ entries", std::to_string(c.core.stqSize)});
    t.row({"Functional units", std::to_string(c.core.numFUs)});
    t.row({"BP type", "Tournament"});
    t.row({"BP entries",
           std::to_string(c.core.branchPred.globalEntries)});
    t.row({"BP history size",
           std::to_string(c.core.branchPred.historyBits) + "-bit"});
    t.row({"BTB entries",
           std::to_string(c.core.branchPred.btbEntries)});
    t.row({"L1D size",
           std::to_string(c.mem.l1d.sizeBytes / 1024) + " KB, " +
               std::to_string(c.mem.l1d.assoc) + "-way LRU, " +
               std::to_string(c.mem.l1d.latency) + " cycles, " +
               std::to_string(c.mem.l1d.mshrs) + " MSHRs"});
    t.row({"L1I size",
           std::to_string(c.mem.l1i.sizeBytes / 1024) + " KB, " +
               std::to_string(c.mem.l1i.assoc) + "-way LRU, " +
               std::to_string(c.mem.l1i.latency) + " cycles, " +
               std::to_string(c.mem.l1i.mshrs) + " MSHRs"});
    t.row({"L2 size",
           std::to_string(c.mem.l2.sizeBytes / 1024 / 1024) +
               " MB inclusive, " + std::to_string(c.mem.l2.assoc) +
               "-way LRU, " + std::to_string(c.mem.l2.latency) +
               " cycles, " + std::to_string(c.mem.l2.mshrs) +
               " MSHRs"});
    t.row({"Line size", std::to_string(LineBytes) + " bytes"});
    t.row({"Memory latency",
           std::to_string(c.mem.dramLatency) + " cycles"});
    t.row({"Stride table",
           std::to_string(c.stride.tableEntries) +
               " entries fully assoc."});
    t.row({"GHB entries", std::to_string(c.ghb.bufferEntries)});
    t.row({"GHB history length",
           std::to_string(c.ghb.historyLength)});
    t.row({"GHB prefetch degree", std::to_string(c.ghb.degree)});
    t.row({"SMS AGT / filter / PHT",
           std::to_string(c.sms.agtEntries) + " / " +
               std::to_string(c.sms.filterEntries) + " / " +
               std::to_string(c.sms.phtEntries) + " entries"});
    t.row({"SMS region size",
           std::to_string(c.sms.regionBytes) + " bytes"});
    t.row({"CBWS max vector members",
           std::to_string(c.cbws.maxVectorMembers)});
    t.row({"CBWS stride size",
           std::to_string(c.cbws.strideBits) + "-bit"});
    t.row({"CBWS last CBWSs stored",
           std::to_string(c.cbws.numSteps)});
    t.row({"CBWS differential table",
           std::to_string(c.cbws.tableEntries) +
               " entries, random repl."});
    t.row({"CBWS lookup hash",
           std::to_string(c.cbws.hashBits) + " line LSBs"});
    std::printf("%s\n", t.render().c_str());
    return 0;
}
