/**
 * @file
 * Shared helpers for the figure- and table-regenerating benches.
 */

#ifndef CBWS_BENCH_COMMON_HH
#define CBWS_BENCH_COMMON_HH

#include <cmath>
#include <string>

#include "sim/experiment.hh"

namespace cbws
{
namespace bench
{

/**
 * Parse the execution knobs every matrix bench shares:
 *
 *   --jobs=N          worker threads (default: CBWS_JOBS env, else 1)
 *   --trace-cache=DIR on-disk trace cache (default: CBWS_TRACE_CACHE
 *                     env; "0"/"off" disables)
 *   --checkpoint=FILE crash-safe checkpoint: finished cells are
 *                     appended; a restarted run resumes from them
 *   --dram=NAME       DRAM timing backend (fixed | ddr)
 *   --pf-opt k=v      scheme parameter override, repeatable; keys are
 *                     validated against the bench's scheme selection
 *                     (see `cbws-sim --scheme help` for the keys)
 *   --profile         host-side self-profiler: phase/worker breakdown
 *                     on stderr at exit plus a BENCH_profile.json
 *                     artifact (also honours CBWS_PROFILE=1)
 *   --profile-json=F  profile artifact destination (implies --profile)
 *   --progress        live matrix progress line on stderr (also
 *                     honours CBWS_PROGRESS=1); stdout is unchanged
 *   --help            print usage and exit
 *
 * init() also arms the deterministic fault-injection harness from the
 * CBWS_FAULT / CBWS_FAULT_SEED environment (base/faultinject.hh).
 *
 * Call at the top of main(); exits on bad arguments or --help. Any
 * jobs value produces byte-identical report output — parallelism
 * only changes wall-clock time.
 */
void init(int argc, char **argv);

/** The runMatrix options resolved by init() (or the env defaults). */
MatrixOptions matrixOptions();

/** Table II system config with the --dram and --pf-opt selections
 *  applied. */
SystemConfig systemConfig();

/** The `--pf-opt key=value` strings collected by init(). */
const std::vector<std::string> &pfOpts();

/** Print the standard bench banner with the paper reference. */
void banner(const std::string &title, const std::string &paper_ref,
            std::uint64_t insts);

/** Run the full 30-benchmark x 7-prefetcher matrix (Table II system). */
ExperimentMatrix fullMatrix(std::uint64_t insts);

/** Format a fraction as a percentage string. */
std::string pct(double fraction, int precision = 1);

/** Geometric mean over rows of @p metric (MI subset or all rows). */
template <typename Fn>
double
geomean(const ExperimentMatrix &matrix, Fn metric, bool mi_only)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
        if (mi_only && !matrix.rows[r].memoryIntensive)
            continue;
        const double v = metric(r);
        if (v > 0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

} // namespace bench
} // namespace cbws

#endif // CBWS_BENCH_COMMON_HH
