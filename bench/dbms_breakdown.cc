/**
 * @file
 * DBMS family breakdown: the full registry zoo raced over the six
 * irregular server kernels (hash-join ... column-materialize), with
 * per-kernel speedup/accuracy/coverage/pollution per scheme.
 *
 * This is the "where CBWS breaks" report: unlike the paper figures,
 * the expected result is CBWS *losing* on most of these kernels, and
 * the output says so explicitly (per-kernel winner vs CBWS verdicts).
 * stdout is golden-diffed by CI (tests/golden/dbms.txt); the full
 * cell matrix lands in the schema-versioned, provenance-stamped
 * BENCH_dbms.json for trend tracking.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "base/json.hh"
#include "base/table.hh"
#include "base/version.hh"
#include "prefetch/registry.hh"
#include "sim/config.hh"
#include "workloads/registry.hh"

using namespace cbws;

namespace
{

/** Version of the BENCH_dbms.json schema (docs/FORMATS.md). */
constexpr unsigned DbmsSchemaVersion = 1;

/** Everything the report needs from one (kernel, scheme) run. */
struct Cell
{
    std::string kernel;
    std::string scheme;
    double ipc = 0.0;
    double speedup = 0.0; ///< IPC over No-Prefetch, same kernel
    double mpki = 0.0;
    std::uint64_t l2DemandMisses = 0;
    std::uint64_t pfIssued = 0;
    double accuracy = 0.0;
    double coverage = 0.0;
    double pollution = 0.0;
    std::uint64_t storageBits = 0;
};

Cell
makeCell(const std::string &kernel, const std::string &scheme,
         const SimResult &res, const SimResult &baseline)
{
    const PrefetchLifecycle life = res.mem.pfLifeTotal();
    Cell cell;
    cell.kernel = kernel;
    cell.scheme = scheme;
    cell.ipc = res.ipc();
    cell.speedup = baseline.ipc() > 0 ? res.ipc() / baseline.ipc()
                                      : 0.0;
    cell.mpki = res.mpki();
    cell.l2DemandMisses = res.mem.llcDemandMisses;
    cell.pfIssued = life.issued;
    cell.accuracy = life.accuracy();
    const std::uint64_t cov_base =
        life.demandHitTimely + res.mem.llcDemandMisses;
    cell.coverage = cov_base ? static_cast<double>(
                                   life.demandHitTimely) /
                                   static_cast<double>(cov_base)
                             : 0.0;
    cell.pollution = life.pollutionRate();
    cell.storageBits = res.prefetcherStorageBits;
    return cell;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    const std::uint64_t insts = benchInstructionBudget(60000);
    bench::banner("DBMS breakdown - irregular server kernels vs the "
                  "full zoo (where CBWS breaks)",
                  "no single figure - the ROADMAP item 2 stress test "
                  "beyond the paper's loop nests",
                  insts);

    // The whole registry, with the speedup baseline guaranteed in.
    std::vector<std::string> schemes = zooSchemeNames();
    const std::string baseline =
        prefetcherRegistry().canonicalName("No-Prefetch");
    if (std::find(schemes.begin(), schemes.end(), baseline) ==
        schemes.end()) {
        schemes.insert(schemes.begin(), baseline);
    }
    const std::string cbws =
        prefetcherRegistry().canonicalName("CBWS");

    const auto workloads = dbmsWorkloads();
    const ExperimentMatrix matrix =
        runMatrix(workloads, schemes, bench::systemConfig(), insts,
                  42, bench::matrixOptions());

    const std::size_t base_col = matrix.column(baseline);
    std::vector<Cell> cells;
    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
        const WorkloadRow &row = matrix.rows[r];
        for (std::size_t k = 0; k < matrix.schemes.size(); ++k) {
            cells.push_back(makeCell(row.workload,
                                     matrix.schemes[k],
                                     row.byPrefetcher[k],
                                     row.byPrefetcher[base_col]));
        }
    }

    // Per-kernel speedup table, one scheme per column.
    std::printf("-- speedup over No-Prefetch (per kernel) --\n");
    TextTable speedups;
    std::vector<std::string> header = {"kernel"};
    for (const auto &scheme : matrix.schemes)
        header.push_back(scheme);
    speedups.header(header);
    for (const auto &row : matrix.rows) {
        std::vector<std::string> out = {row.workload};
        for (const Cell &cell : cells) {
            if (cell.kernel != row.workload)
                continue;
            out.push_back(TextTable::num(cell.speedup, 2) + "x");
        }
        speedups.row(out);
    }
    std::printf("%s\n", speedups.render().c_str());

    // Per-kernel winner vs CBWS: the honesty table. "CBWS beaten"
    // means some scheme outside the CBWS family is strictly faster
    // than standalone CBWS on that kernel.
    std::printf("-- per-kernel winner vs CBWS --\n");
    TextTable verdicts;
    verdicts.header({"kernel", "best scheme", "best", "CBWS",
                     "verdict"});
    std::vector<std::string> beaten_on;
    for (const auto &row : matrix.rows) {
        const Cell *best = nullptr;
        const Cell *cbws_cell = nullptr;
        for (const Cell &cell : cells) {
            if (cell.kernel != row.workload)
                continue;
            if (cell.scheme == cbws)
                cbws_cell = &cell;
            // The winner is the best *non-CBWS-family* scheme: the
            // point is what takes over where CBWS cannot predict.
            if (cell.scheme == baseline ||
                cell.scheme.rfind("CBWS", 0) == 0)
                continue;
            if (!best || cell.speedup > best->speedup ||
                (cell.speedup == best->speedup &&
                 cell.scheme < best->scheme))
                best = &cell;
        }
        if (!best || !cbws_cell)
            continue;
        const bool beaten = best->speedup > cbws_cell->speedup;
        if (beaten)
            beaten_on.push_back(row.workload);
        verdicts.row({row.workload, best->scheme,
                      TextTable::num(best->speedup, 2) + "x",
                      TextTable::num(cbws_cell->speedup, 2) + "x",
                      beaten ? "CBWS beaten" : "CBWS competitive"});
    }
    std::printf("%s\n", verdicts.render().c_str());

    // Family-level mini leaderboard: geomean speedup plus rolled-up
    // lifecycle rates, sorted best first (name tie-break).
    std::printf("-- scheme aggregates over the DBMS family --\n");
    struct Standing
    {
        std::string scheme;
        double score = 0.0;
        double accuracy = 0.0;
        double coverage = 0.0;
        double pollution = 0.0;
    };
    std::vector<Standing> standings;
    for (const auto &scheme : matrix.schemes) {
        Standing s;
        s.scheme = scheme;
        double log_sum = 0.0, acc = 0.0, cov = 0.0, pol = 0.0;
        std::size_t n = 0;
        for (const Cell &cell : cells) {
            if (cell.scheme != scheme || cell.speedup <= 0)
                continue;
            log_sum += std::log(cell.speedup);
            acc += cell.accuracy;
            cov += cell.coverage;
            pol += cell.pollution;
            ++n;
        }
        if (n) {
            s.score = std::exp(log_sum / static_cast<double>(n));
            s.accuracy = acc / static_cast<double>(n);
            s.coverage = cov / static_cast<double>(n);
            s.pollution = pol / static_cast<double>(n);
        }
        standings.push_back(s);
    }
    std::sort(standings.begin(), standings.end(),
              [](const Standing &a, const Standing &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.scheme < b.scheme;
              });
    TextTable aggregates;
    aggregates.header({"scheme", "geomean", "accuracy", "coverage",
                       "pollution"});
    for (const Standing &s : standings) {
        aggregates.row({s.scheme, TextTable::num(s.score, 3),
                        TextTable::num(100.0 * s.accuracy, 1) + "%",
                        TextTable::num(100.0 * s.coverage, 1) + "%",
                        TextTable::num(100.0 * s.pollution, 1) +
                            "%"});
    }
    std::printf("%s\n", aggregates.render().c_str());

    if (beaten_on.empty()) {
        std::printf("CBWS beaten on: (none - the family is not "
                    "doing its job)\n");
    } else {
        std::printf("CBWS beaten on:");
        for (const auto &kernel : beaten_on)
            std::printf(" %s", kernel.c_str());
        std::printf(" (%zu of %zu kernels)\n", beaten_on.size(),
                    matrix.rows.size());
    }

    JsonWriter w;
    w.beginObject();
    w.field("schema_version",
            static_cast<std::uint64_t>(DbmsSchemaVersion));
    w.field("bench", "dbms_breakdown");
    w.key("provenance");
    writeProvenance(w);
    w.field("instructions_per_run", insts);
    w.field("seed", static_cast<std::uint64_t>(42));
    w.key("schemes");
    w.beginArray();
    for (const auto &scheme : matrix.schemes)
        w.value(scheme);
    w.endArray();
    w.key("kernels");
    w.beginArray();
    for (const auto &row : matrix.rows)
        w.value(row.workload);
    w.endArray();
    w.key("cells");
    w.beginArray();
    for (const Cell &cell : cells) {
        w.beginObject();
        w.field("kernel", cell.kernel);
        w.field("scheme", cell.scheme);
        w.field("ipc", cell.ipc);
        w.field("speedup", cell.speedup);
        w.field("mpki", cell.mpki);
        w.field("l2_demand_misses", cell.l2DemandMisses);
        w.field("pf_issued", cell.pfIssued);
        w.field("accuracy", cell.accuracy);
        w.field("coverage", cell.coverage);
        w.field("pollution", cell.pollution);
        w.field("storage_bits", cell.storageBits);
        w.endObject();
    }
    w.endArray();
    w.key("cbws_beaten_on");
    w.beginArray();
    for (const auto &kernel : beaten_on)
        w.value(kernel);
    w.endArray();
    w.endObject();

    const char *json_path = "BENCH_dbms.json";
    std::FILE *f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
    std::fprintf(stderr, "dbms breakdown written to %s\n", json_path);
    return 0;
}
