/**
 * @file
 * Extension experiment (beyond the paper's evaluation): CBWS as a
 * *generic* add-on.
 *
 * The paper designs CBWS "as an add-on component" and evaluates one
 * pairing (CBWS+SMS). This bench pairs the same CBWS unit with AMPM
 * (Ishii et al., discussed in the paper's related work) and compares
 * all four combinations on the memory-intensive group — testing the
 * claim that the block-level predictor composes with any zone/stream
 * fallback.
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"
#include "workloads/registry.hh"

using namespace cbws;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    const std::uint64_t insts = benchInstructionBudget();
    bench::banner("Extension - CBWS as a generic add-on: SMS vs "
                  "AMPM fallbacks",
                  "Section III-A related work (AMPM) + the add-on "
                  "design of Section I",
                  insts);

    const std::vector<std::string> schemes = {
        "SMS", "CBWS+SMS", "AMPM", "CBWS+AMPM"};
    SystemConfig config = bench::systemConfig();
    auto matrix = runMatrix(memoryIntensiveWorkloads(), schemes,
                            config, insts, 42,
                            bench::matrixOptions());

    TextTable table;
    table.header({"benchmark", "SMS", "CBWS+SMS", "AMPM",
                  "CBWS+AMPM", "add-on gain (SMS)",
                  "add-on gain (AMPM)"});
    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
        const auto &row = matrix.rows[r];
        const double sms = row.byPrefetcher[0].ipc();
        const double cbws_sms = row.byPrefetcher[1].ipc();
        const double ampm = row.byPrefetcher[2].ipc();
        const double cbws_ampm = row.byPrefetcher[3].ipc();
        table.row({row.workload, TextTable::num(sms, 3),
                   TextTable::num(cbws_sms, 3),
                   TextTable::num(ampm, 3),
                   TextTable::num(cbws_ampm, 3),
                   TextTable::num(cbws_sms / sms, 2) + "x",
                   TextTable::num(cbws_ampm / ampm, 2) + "x"});
    }
    table.row({"geomean", "", "", "", "",
               TextTable::num(
                   bench::geomean(
                       matrix,
                       [&](std::size_t r) {
                           return matrix.rows[r]
                                      .byPrefetcher[1]
                                      .ipc() /
                                  matrix.rows[r]
                                      .byPrefetcher[0]
                                      .ipc();
                       },
                       true),
                   2) +
                   "x",
               TextTable::num(
                   bench::geomean(
                       matrix,
                       [&](std::size_t r) {
                           return matrix.rows[r]
                                      .byPrefetcher[3]
                                      .ipc() /
                                  matrix.rows[r]
                                      .byPrefetcher[2]
                                      .ipc();
                       },
                       true),
                   2) +
                   "x"});
    std::printf("%s\n", table.render().c_str());
    std::printf("Expectation: the CBWS add-on improves *both* "
                "fallbacks on loop-dominated\nbenchmarks — the "
                "block-level predictor composes with any base "
                "scheme.\n");
    return 0;
}
