/**
 * @file
 * Ablation study of the CBWS design choices called out in DESIGN.md:
 *
 *  - differential-history-table size (fft/streamcluster thrash),
 *  - maximum CBWS vector members (bzip2's >16-line blocks),
 *  - multi-step prediction depth (timeliness),
 *  - training on all block accesses vs misses only (the
 *    compiler-hint aggressiveness claim of Section II).
 *
 * Each sweep runs the standalone CBWS prefetcher on a small set of
 * benchmarks chosen to expose the parameter.
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"
#include "workloads/registry.hh"

using namespace cbws;

namespace
{

SimResult
runCbws(const std::string &workload, const CbwsParams &params,
        std::uint64_t insts)
{
    auto w = findWorkload(workload);
    SystemConfig config;
    config.scheme = "CBWS";
    config.cbws = params;
    WorkloadParams wp;
    wp.maxInstructions = insts;
    return simulateWorkload(*w, config, wp, SimProbes(), insts / 4);
}

void
sweepTableSize(std::uint64_t insts)
{
    std::printf("-- differential history table size "
                "(paper: 16 entries) --\n");
    TextTable t;
    t.header({"entries", "fft IPC", "fft MPKI", "streamcl IPC",
              "sgemm IPC"});
    for (unsigned entries : {4u, 8u, 16u, 32u, 64u}) {
        CbwsParams p;
        p.tableEntries = entries;
        auto fft = runCbws("fft-simlarge", p, insts);
        auto sc = runCbws("streamcluster-simlarge", p, insts);
        auto sg = runCbws("sgemm-medium", p, insts);
        t.row({std::to_string(entries),
               TextTable::num(fft.ipc(), 3),
               TextTable::num(fft.mpki(), 1),
               TextTable::num(sc.ipc(), 3),
               TextTable::num(sg.ipc(), 3)});
    }
    std::printf("%s\n", t.render().c_str());
}

void
sweepVectorMembers(std::uint64_t insts)
{
    std::printf("-- max CBWS vector members (paper: 16; bzip2 "
                "blocks exceed it) --\n");
    TextTable t;
    t.header({"members", "bzip2 IPC", "bzip2 MPKI", "lbm IPC",
              "stencil IPC"});
    for (unsigned members : {4u, 8u, 16u, 32u, 64u}) {
        CbwsParams p;
        p.maxVectorMembers = members;
        auto bz = runCbws("401.bzip2-source", p, insts);
        auto lbm = runCbws("lbm-long", p, insts);
        auto st = runCbws("stencil-default", p, insts);
        t.row({std::to_string(members),
               TextTable::num(bz.ipc(), 3),
               TextTable::num(bz.mpki(), 1),
               TextTable::num(lbm.ipc(), 3),
               TextTable::num(st.ipc(), 3)});
    }
    std::printf("%s\n", t.render().c_str());
}

void
sweepSteps(std::uint64_t insts)
{
    std::printf("-- multi-step prediction depth (paper: 4) --\n");
    TextTable t;
    t.header({"steps", "sgemm IPC", "stencil IPC",
              "libquantum IPC"});
    for (unsigned steps : {1u, 2u, 4u, 8u}) {
        CbwsParams p;
        p.numSteps = steps;
        auto sg = runCbws("sgemm-medium", p, insts);
        auto st = runCbws("stencil-default", p, insts);
        auto lq = runCbws("462.libquantum-ref", p, insts);
        t.row({std::to_string(steps), TextTable::num(sg.ipc(), 3),
               TextTable::num(st.ipc(), 3),
               TextTable::num(lq.ipc(), 3)});
    }
    std::printf("%s\n", t.render().c_str());
}

void
sweepTrainFilter(std::uint64_t insts)
{
    std::printf("-- track all L1 accesses in blocks vs misses only "
                "(Section II's aggressiveness) --\n");
    TextTable t;
    t.header({"benchmark", "all-accesses IPC", "misses-only IPC"});
    for (const char *name :
         {"stencil-default", "sgemm-medium", "radix-simlarge"}) {
        CbwsParams all;
        CbwsParams misses;
        misses.trainOnHits = false;
        auto a = runCbws(name, all, insts);
        auto m = runCbws(name, misses, insts);
        t.row({name, TextTable::num(a.ipc(), 3),
               TextTable::num(m.ipc(), 3)});
    }
    std::printf("%s\n", t.render().c_str());
}

void
sweepL2Size(std::uint64_t insts)
{
    std::printf("-- L2 capacity sensitivity (paper: 2 MB) --\n");
    TextTable t;
    t.header({"L2 size", "stencil SMS IPC", "stencil CBWS+SMS IPC",
              "gain"});
    auto w = findWorkload("stencil-default");
    WorkloadParams wp;
    wp.maxInstructions = insts;
    Trace trace;
    w->generate(trace, wp);
    for (std::uint64_t kb : {512u, 1024u, 2048u, 4096u, 8192u}) {
        SystemConfig sms_cfg, hybrid_cfg;
        sms_cfg.scheme = "SMS";
        hybrid_cfg.scheme = "CBWS+SMS";
        sms_cfg.mem.l2.sizeBytes = kb * 1024;
        hybrid_cfg.mem.l2.sizeBytes = kb * 1024;
        auto sms = simulate(trace, sms_cfg, insts, SimProbes(),
                            insts / 4);
        auto hybrid = simulate(trace, hybrid_cfg, insts,
                               SimProbes(), insts / 4);
        t.row({std::to_string(kb) + " KB",
               TextTable::num(sms.ipc(), 3),
               TextTable::num(hybrid.ipc(), 3),
               TextTable::num(hybrid.ipc() / sms.ipc(), 2) + "x"});
    }
    std::printf("%s\n", t.render().c_str());
}

void
sweepPrefetchTarget(std::uint64_t insts)
{
    std::printf("-- prefetch fill target (paper: L2 only) --\n");
    TextTable t;
    t.header({"benchmark", "fill L2 (paper)", "fill L1D+L2"});
    for (const char *name :
         {"stencil-default", "sgemm-medium", "nw"}) {
        auto w = findWorkload(name);
        WorkloadParams wp;
        wp.maxInstructions = insts;
        Trace trace;
        w->generate(trace, wp);
        SystemConfig l2_cfg, l1_cfg;
        l2_cfg.scheme = "CBWS+SMS";
        l1_cfg.scheme = "CBWS+SMS";
        l1_cfg.mem.prefetchToL1 = true;
        auto l2r = simulate(trace, l2_cfg, insts, SimProbes(),
                            insts / 4);
        auto l1r = simulate(trace, l1_cfg, insts, SimProbes(),
                            insts / 4);
        t.row({name, TextTable::num(l2r.ipc(), 3),
               TextTable::num(l1r.ipc(), 3)});
    }
    std::printf("%s\n", t.render().c_str());
}

void
sweepHashWidth(std::uint64_t insts)
{
    std::printf("-- differential hash width (paper: 12-bit "
                "bit-select hashes, 16-bit folded tag) --\n");
    TextTable t;
    t.header({"hash bits", "stencil IPC", "radix IPC",
              "milc IPC"});
    for (unsigned bits : {4u, 8u, 12u, 16u}) {
        CbwsParams p;
        p.hashBits = bits;
        auto st = runCbws("stencil-default", p, insts);
        auto rx = runCbws("radix-simlarge", p, insts);
        auto ml = runCbws("433.milc-su3imp", p, insts);
        t.row({std::to_string(bits), TextTable::num(st.ipc(), 3),
               TextTable::num(rx.ipc(), 3),
               TextTable::num(ml.ipc(), 3)});
    }
    std::printf("%s\n", t.render().c_str());
}

void
sweepDramBandwidth(std::uint64_t insts)
{
    std::printf("-- DRAM bandwidth sensitivity (min cycles between "
                "DRAM requests; 0 = paper's\n   latency-only model) "
                "--\n");
    TextTable t;
    t.header({"interval", "stencil SMS", "stencil CBWS+SMS",
              "gain"});
    auto w = findWorkload("stencil-default");
    WorkloadParams wp;
    wp.maxInstructions = insts;
    Trace trace;
    w->generate(trace, wp);
    for (Cycle interval : {Cycle(0), Cycle(4), Cycle(8), Cycle(16),
                           Cycle(32)}) {
        SystemConfig sms_cfg, hybrid_cfg;
        sms_cfg.scheme = "SMS";
        hybrid_cfg.scheme = "CBWS+SMS";
        sms_cfg.mem.dramMinInterval = interval;
        hybrid_cfg.mem.dramMinInterval = interval;
        auto sms = simulate(trace, sms_cfg, insts, SimProbes(),
                            insts / 4);
        auto hybrid = simulate(trace, hybrid_cfg, insts,
                               SimProbes(), insts / 4);
        t.row({std::to_string(interval),
               TextTable::num(sms.ipc(), 3),
               TextTable::num(hybrid.ipc(), 3),
               TextTable::num(hybrid.ipc() / sms.ipc(), 2) + "x"});
    }
    std::printf("%s\n", t.render().c_str());
}

} // anonymous namespace

int
main()
{
    const std::uint64_t insts = benchInstructionBudget(60000);
    bench::banner("CBWS ablations (design choices from DESIGN.md "
                  "section 6)",
                  "Section V design parameters", insts);
    sweepTableSize(insts);
    sweepVectorMembers(insts);
    sweepSteps(insts);
    sweepTrainFilter(insts);
    sweepHashWidth(insts);
    sweepPrefetchTarget(insts);
    sweepL2Size(insts);
    sweepDramBandwidth(insts);
    return 0;
}
