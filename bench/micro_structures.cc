/**
 * @file
 * google-benchmark micro-benchmarks of the prefetcher hardware
 * structures: per-access cost of each scheme's training/prediction
 * logic, CBWS table operations and the branch predictor.
 *
 * These measure the simulator's software cost (useful when sizing
 * experiment budgets), not the modelled hardware latency.
 */

#include <benchmark/benchmark.h>

#include "core/cbws_prefetcher.hh"
#include "cpu/branch_pred.hh"
#include "core/multi_context.hh"
#include "prefetch/ampm.hh"
#include "prefetch/composite.hh"
#include "prefetch/ghb.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

namespace
{

using namespace cbws;

class NullSink : public PrefetchSink
{
  public:
    void issuePrefetch(LineAddr line, PfSource) override
    {
        benchmark::DoNotOptimize(line);
    }
    bool isCached(LineAddr) const override { return false; }
};

PrefetchContext
ctxFor(std::uint64_t i)
{
    PrefetchContext ctx;
    ctx.pc = 0x400 + (i % 16) * 4;
    ctx.addr = 0x1000000 + i * 72;
    ctx.line = lineOf(ctx.addr);
    ctx.l2Miss = true;
    return ctx;
}

void
BM_StrideObserve(benchmark::State &state)
{
    StridePrefetcher pf;
    NullSink sink;
    std::uint64_t i = 0;
    for (auto _ : state)
        pf.observeAccess(ctxFor(i++), sink);
}
BENCHMARK(BM_StrideObserve);

void
BM_GhbPcDcObserve(benchmark::State &state)
{
    GhbPrefetcher pf(GhbPrefetcher::Mode::PcDC);
    NullSink sink;
    std::uint64_t i = 0;
    for (auto _ : state)
        pf.observeAccess(ctxFor(i++), sink);
}
BENCHMARK(BM_GhbPcDcObserve);

void
BM_SmsObserve(benchmark::State &state)
{
    SmsPrefetcher pf;
    NullSink sink;
    std::uint64_t i = 0;
    for (auto _ : state)
        pf.observeAccess(ctxFor(i++), sink);
}
BENCHMARK(BM_SmsObserve);

void
BM_CbwsBlock(benchmark::State &state)
{
    // Cost of a whole annotated block: begin + N accesses + end
    // (training, differential update and prediction).
    const unsigned lines = static_cast<unsigned>(state.range(0));
    CbwsPrefetcher pf;
    NullSink sink;
    std::uint64_t b = 0;
    for (auto _ : state) {
        pf.blockBegin(1, sink);
        for (unsigned j = 0; j < lines; ++j) {
            PrefetchContext ctx;
            ctx.pc = 0x400 + j * 4;
            ctx.addr = (100000ull * (j + 1) + b * 64) * 64;
            ctx.line = lineOf(ctx.addr);
            pf.observeCommit(ctx, sink);
        }
        pf.blockEnd(1, sink);
        ++b;
    }
    state.SetItemsProcessed(state.iterations() * lines);
}
BENCHMARK(BM_CbwsBlock)->Arg(2)->Arg(7)->Arg(16);

void
BM_DifferentialTableLookup(benchmark::State &state)
{
    DifferentialTable table(16);
    CbwsDifferential d;
    for (int i = 0; i < 16; ++i)
        d.append(static_cast<std::int16_t>(i));
    for (std::uint16_t tag = 0; tag < 16; ++tag)
        table.insert(tag, d);
    std::uint16_t tag = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(tag));
        tag = (tag + 1) & 31;
    }
}
BENCHMARK(BM_DifferentialTableLookup);

void
BM_AmpmObserve(benchmark::State &state)
{
    AmpmPrefetcher pf;
    NullSink sink;
    std::uint64_t i = 0;
    for (auto _ : state)
        pf.observeAccess(ctxFor(i++), sink);
}
BENCHMARK(BM_AmpmObserve);

void
BM_MultiContextBlock(benchmark::State &state)
{
    CbwsMultiContextPrefetcher pf;
    NullSink sink;
    std::uint64_t b = 0;
    for (auto _ : state) {
        const BlockId id = static_cast<BlockId>(b % 4);
        pf.blockBegin(id, sink);
        PrefetchContext ctx;
        ctx.addr = (100000ull * (id + 1) + b * 64) * 64;
        ctx.line = lineOf(ctx.addr);
        pf.observeCommit(ctx, sink);
        pf.blockEnd(id, sink);
        ++b;
    }
}
BENCHMARK(BM_MultiContextBlock);

void
BM_BranchPredictor(benchmark::State &state)
{
    TournamentBP bp;
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.predictAndTrain(
            0x400 + (i % 64) * 4, (i & 3) != 0, 0x400));
        ++i;
    }
}
BENCHMARK(BM_BranchPredictor);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Whole-system simulation rate (instructions per second) on the
    // stencil workload with the CBWS+SMS configuration.
    auto w = findWorkload("stencil-default");
    WorkloadParams params;
    params.maxInstructions = 20000;
    Trace trace;
    w->generate(trace, params);
    SystemConfig config;
    config.scheme = "CBWS+SMS";
    for (auto _ : state) {
        SimResult r = simulate(trace, config,
                               params.maxInstructions);
        benchmark::DoNotOptimize(r.core.cycles);
    }
    state.SetItemsProcessed(state.iterations() *
                            params.maxInstructions);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void
BM_InOrderThroughput(benchmark::State &state)
{
    auto w = findWorkload("stencil-default");
    WorkloadParams params;
    params.maxInstructions = 20000;
    Trace trace;
    w->generate(trace, params);
    SystemConfig config;
    config.coreModel = CoreModel::InOrder;
    config.scheme = "CBWS+SMS";
    for (auto _ : state) {
        SimResult r = simulate(trace, config,
                               params.maxInstructions);
        benchmark::DoNotOptimize(r.core.cycles);
    }
    state.SetItemsProcessed(state.iterations() *
                            params.maxInstructions);
}
BENCHMARK(BM_InOrderThroughput)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
