/**
 * @file
 * Extension experiment (beyond the paper): prefetcher interference
 * between cores sharing an L2.
 *
 * The paper evaluates CBWS on a single core with a private 2 MB L2.
 * When several cores share that L2, one core's prefetches can evict
 * another core's useful lines — the classic pollution argument against
 * aggressive prefetching in CMPs. This bench runs a two-workload rate
 * mix on 1, 2 and 4 cores over a deliberately small shared L2 and
 * reports per-core slowdown versus the solo run, the cross-core
 * prefetch-pollution misses the hierarchy attributes, and the L2 bank
 * conflicts added by sharing. Results go to BENCH_multicore.json for
 * CI trend tracking.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/table.hh"
#include "common.hh"
#include "workloads/registry.hh"

using namespace cbws;

namespace
{

/** Aggregate throughput: all committed instructions over the slowest
 *  core's cycles. */
double
throughputIpc(const SimResult &r)
{
    return r.core.cycles ? static_cast<double>(r.core.instructions) /
                               static_cast<double>(r.core.cycles)
                         : 0.0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    const std::uint64_t insts = benchInstructionBudget(40000);
    bench::banner("Extension - multi-core shared-L2 prefetcher "
                  "interference",
                  "rate mix on a shared L2 (extension; cf. Sec. VI "
                  "single-core setup)",
                  insts);

    // A small shared L2 makes capacity interference visible at bench
    // budgets; the mix pairs two memory-intensive streams with
    // different footprints so prefetches of one evict the other.
    const std::vector<std::string> mix = {"radix-simlarge",
                                          "lbm-long"};
    SystemConfig config = bench::systemConfig();
    config.scheme = "CBWS+SMS";
    config.mem.l2.sizeBytes = 64 * 1024;

    // Synthesise each mix member once; every core replays a shared
    // read-only copy.
    std::vector<Trace> traces(mix.size());
    for (std::size_t i = 0; i < mix.size(); ++i) {
        auto found = findWorkloadChecked(mix[i]);
        if (!found.ok()) {
            std::fprintf(stderr, "%s\n",
                         found.error().str().c_str());
            return 1;
        }
        auto w = std::move(found).value();
        WorkloadParams params;
        params.maxInstructions = insts;
        traces[i].reserve(insts + 512);
        w->generate(traces[i], params);
    }

    // Solo IPC of each mix member on the same (shared-size) system is
    // the slowdown baseline.
    std::vector<double> solo_ipc(mix.size());
    for (std::size_t i = 0; i < mix.size(); ++i) {
        SimResult solo = simulate(traces[i], config, insts,
                                  SimProbes(), insts / 4);
        solo_ipc[i] = solo.ipc();
    }

    TextTable table;
    table.header({"cores", "agg IPC", "worst slowdown",
                  "cross-core pollution", "bank conflicts"});

    JsonWriter json;
    json.beginObject();
    json.field("bench", "multicore_interference");
    json.field("instructions_per_core", insts);
    json.field("prefetcher", schemeName(config));
    json.field("l2_kb", config.mem.l2.sizeBytes / 1024);
    json.key("mix");
    json.beginArray();
    for (const auto &name : mix)
        json.value(name);
    json.endArray();
    json.key("points");
    json.beginArray();

    bool pollution_seen = false;
    for (unsigned cores : {1u, 2u, 4u}) {
        std::vector<const Trace *> core_traces;
        std::vector<std::string> core_names;
        for (unsigned c = 0; c < cores; ++c) {
            core_traces.push_back(&traces[c % mix.size()]);
            core_names.push_back(mix[c % mix.size()]);
        }
        SystemConfig cfg = config;
        cfg.mem.numCores = cores;
        const SimResult r =
            simulateMulti(core_traces, core_names, cfg, insts,
                          SimProbes(), insts / 4);

        double worst_slowdown = 1.0;
        if (cores > 1) {
            for (unsigned c = 0; c < cores; ++c) {
                const double base = solo_ipc[c % mix.size()];
                const double ipc = r.perCore[c].ipc();
                if (ipc > 0 && base / ipc > worst_slowdown)
                    worst_slowdown = base / ipc;
            }
        }
        if (r.mem.crossCorePollutionMisses > 0)
            pollution_seen = true;

        table.row({std::to_string(cores),
                   TextTable::num(throughputIpc(r), 3),
                   TextTable::num(worst_slowdown, 2) + "x",
                   std::to_string(r.mem.crossCorePollutionMisses),
                   std::to_string(r.mem.l2BankConflicts)});

        json.beginObject();
        json.field("cores", static_cast<std::uint64_t>(cores));
        json.field("aggregate_ipc", throughputIpc(r));
        json.field("worst_slowdown", worst_slowdown);
        json.field("cross_core_pollution_misses",
                   r.mem.crossCorePollutionMisses);
        json.field("l2_bank_conflicts", r.mem.l2BankConflicts);
        json.key("per_core");
        json.beginArray();
        if (cores == 1) {
            json.beginObject();
            json.field("workload", core_names[0]);
            json.field("ipc", r.ipc());
            json.field("mpki", r.mpki());
            json.endObject();
        } else {
            for (const CoreSliceResult &s : r.perCore) {
                json.beginObject();
                json.field("workload", s.workload);
                json.field("ipc", s.ipc());
                json.field("mpki", s.mpki());
                json.endObject();
            }
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.field("pollution_seen", pollution_seen);
    json.endObject();

    std::printf("%s\n", table.render().c_str());
    std::printf("Expectation: slowdown and pollution grow with the "
                "core count; the attributed\ncross-core pollution "
                "misses are nonzero once the shared L2 is "
                "capacity-stressed.\n");

    std::FILE *out = std::fopen("BENCH_multicore.json", "w");
    if (out) {
        std::fprintf(out, "%s\n", json.str().c_str());
        std::fclose(out);
        std::printf("wrote BENCH_multicore.json\n");
    } else {
        std::fprintf(stderr, "could not write BENCH_multicore.json\n");
    }
    return 0;
}
