/**
 * @file
 * Regenerates Fig. 5: the correlation between the number of distinct
 * CBWS differential vectors and the fraction of loop iterations they
 * explain.
 *
 * For each benchmark shown in the paper's figure, the CBWS
 * prefetcher's instrumentation probe records the identity of every
 * 1-step differential; the coverage curve reports which fraction of
 * iterations the most frequent X% of distinct vectors differentiate.
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"
#include "workloads/registry.hh"

using namespace cbws;

int
main()
{
    const std::uint64_t insts = benchInstructionBudget();
    bench::banner("Figure 5 - skew of the CBWS differential-vector "
                  "distribution",
                  "Figure 5", insts);

    // The subset of benchmarks shown in the paper's Fig. 5.
    const char *names[] = {
        "450.soplex-ref",       "433.milc-su3imp",
        "stencil-default",      "radix-simlarge",
        "sgemm-medium",         "streamcluster-simlarge",
    };

    TextTable table;
    table.header({"benchmark", "distinct", "iters", "5%-cov",
                  "10%-cov", "25%-cov", "vecs for 90%"});
    for (const char *name : names) {
        auto w = findWorkload(name);
        if (!w)
            continue;
        SystemConfig config;
        config.scheme = "CBWS";
        WorkloadParams params;
        params.maxInstructions = insts;
        FrequencyCounter probe;
        SimProbes probes;
        probes.differentials = &probe;
        simulateWorkload(*w, config, params, probes);

        const auto curve = probe.coverageCurve();
        auto coverage_at = [&curve](double frac_of_vectors) {
            if (curve.empty())
                return 0.0;
            std::size_t idx = static_cast<std::size_t>(
                frac_of_vectors * static_cast<double>(curve.size()));
            if (idx >= curve.size())
                idx = curve.size() - 1;
            return curve[idx];
        };
        table.row({name, std::to_string(probe.distinct()),
                   std::to_string(probe.total()),
                   bench::pct(coverage_at(0.05)),
                   bench::pct(coverage_at(0.10)),
                   bench::pct(coverage_at(0.25)),
                   bench::pct(
                       probe.vectorsFractionForCoverage(0.90))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper: the vast majority of loop iterations are "
                "served by a tiny fraction of the\ndistinct "
                "differential vectors (soplex: ~90%% of iterations "
                "from ~5%% of vectors).\n");
    return 0;
}
