#include "common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/argparse.hh"
#include "base/faultinject.hh"
#include "base/profiler.hh"
#include "base/threadpool.hh"
#include "mem/dram/backend.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace bench
{

namespace
{

/** Resolved by init(); defaulted from the environment otherwise. */
unsigned g_jobs = 0; // 0 = let runMatrix resolve CBWS_JOBS
TraceCache g_trace_cache = TraceCache::fromEnv();
std::string g_checkpoint;      // empty = checkpointing off
std::string g_dram = "fixed";  // DRAM timing backend
std::vector<std::string> g_pf_opts; // --pf-opt key=value overrides
bool g_progress = false;       // live stderr progress line
std::string g_profile_json = "BENCH_profile.json";

/**
 * atexit hook: benches never return through a common function, so the
 * profile report is rendered when the process winds down. The table
 * goes to stderr — every bench's stdout is golden-diffed by CI.
 */
void
writeProfileAtExit()
{
    if (!prof::enabled())
        return;
    const prof::Report report = prof::report();
    std::fputs(prof::renderTable(report).c_str(), stderr);
    if (!prof::writeJsonFile(g_profile_json, report)) {
        std::fprintf(stderr, "profile: cannot write '%s'\n",
                     g_profile_json.c_str());
    } else {
        std::fprintf(stderr, "profile written to %s\n",
                     g_profile_json.c_str());
    }
}

} // anonymous namespace

void
init(int argc, char **argv)
{
    ArgParser parser(argv && argc > 0 ? argv[0] : "bench",
                     "Figure-regenerating bench (CBWS reproduction)");
    parser.addOption("jobs",
                     "worker threads for the experiment matrix "
                     "(default: CBWS_JOBS env, else 1; results are "
                     "identical for any value)");
    parser.addOption("trace-cache",
                     "directory for the on-disk trace cache "
                     "(default: CBWS_TRACE_CACHE env; '0' or 'off' "
                     "disables)");
    parser.addOption("checkpoint",
                     "crash-safe checkpoint file: finished matrix "
                     "cells are appended there and a restarted run "
                     "resumes instead of recomputing them");
    parser.addOption("dram",
                     "DRAM timing backend: 'fixed' (paper's flat "
                     "latency, default) or 'ddr' (cycle-level banked "
                     "model)");
    parser.addRepeatable("pf-opt",
                         "scheme parameter override as key=value "
                         "(e.g. degree=4, cbws.table-entries=32); "
                         "validated against the bench's scheme "
                         "selection");
    parser.addFlag("profile",
                   "host-side self-profiler: phase/worker breakdown "
                   "on stderr at exit + BENCH_profile.json (also "
                   "honours CBWS_PROFILE=1)");
    parser.addOption("profile-json",
                     "profile artifact destination (implies "
                     "--profile; default BENCH_profile.json)");
    parser.addFlag("progress",
                   "live matrix progress line on stderr (also "
                   "honours CBWS_PROGRESS=1); stdout is unchanged");
    if (!parser.parse(argc, argv))
        std::exit(1);
    if (parser.helpRequested())
        std::exit(0);

    {
        Result<void> faults =
            FaultInjector::instance().configureFromEnv();
        if (!faults.ok()) {
            std::fprintf(stderr, "CBWS_FAULT: %s\n",
                         faults.error().str().c_str());
            std::exit(1);
        }
    }

    if (parser.provided("jobs")) {
        const std::uint64_t jobs = parser.getUint("jobs", 0);
        if (jobs == 0) {
            std::fprintf(stderr, "--jobs must be a positive integer\n");
            std::exit(1);
        }
        g_jobs = static_cast<unsigned>(jobs);
    }
    if (parser.provided("trace-cache")) {
        const std::string dir = parser.get("trace-cache");
        g_trace_cache = (dir.empty() || dir == "0" || dir == "off")
                            ? TraceCache()
                            : TraceCache(dir);
    }
    if (parser.provided("checkpoint")) {
        g_checkpoint = parser.get("checkpoint");
        // Checkpointed benches drain gracefully on SIGINT/SIGTERM:
        // in-flight cells finish, the checkpoint is sealed, and the
        // process exits 130 — so an interrupted sweep never loses
        // completed cells (SIGKILL-resume is the tested hard case).
        installMatrixSignalHandlers();
    }
    if (parser.provided("dram")) {
        g_dram = parser.get("dram");
        if (!dramBackendRegistry().contains(g_dram)) {
            std::fprintf(stderr,
                         "--dram: unknown backend '%s' (see "
                         "cbws-sim --dram help)\n",
                         g_dram.c_str());
            std::exit(1);
        }
    }
    g_pf_opts = parser.getAll("pf-opt");
    g_progress = parser.getFlag("progress");
    if (parser.provided("profile-json"))
        g_profile_json = parser.get("profile-json");
    if (parser.getFlag("profile") || parser.provided("profile-json"))
        prof::enable();
    prof::enableFromEnv();
    if (prof::enabled())
        std::atexit(writeProfileAtExit);
}

MatrixOptions
matrixOptions()
{
    MatrixOptions options;
    options.jobs = g_jobs;
    if (g_trace_cache.enabled())
        options.traceCache = &g_trace_cache;
    options.checkpointPath = g_checkpoint;
    options.progress = g_progress;
    return options;
}

void
banner(const std::string &title, const std::string &paper_ref,
       std::uint64_t insts)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces %s of \"Loop-Aware Memory Prefetching "
                "Using Code Block Working\nSets\" (MICRO 2014). "
                "%llu committed instructions per run "
                "(CBWS_BENCH_INSTS overrides).\n",
                paper_ref.c_str(),
                static_cast<unsigned long long>(insts));
    std::printf("==============================================="
                "=============================\n\n");
}

SystemConfig
systemConfig()
{
    SystemConfig config; // Table II defaults
    config.mem.dramBackend = g_dram;
    config.pfOpts = g_pf_opts;
    return config;
}

const std::vector<std::string> &
pfOpts()
{
    return g_pf_opts;
}

ExperimentMatrix
fullMatrix(std::uint64_t insts)
{
    return runMatrix(allWorkloads(), allSchemeNames(),
                     systemConfig(), insts, 42, matrixOptions());
}

std::string
pct(double fraction, int precision)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

} // namespace bench
} // namespace cbws
