#include "common.hh"

#include <cmath>
#include <cstdio>

#include "workloads/registry.hh"

namespace cbws
{
namespace bench
{

void
banner(const std::string &title, const std::string &paper_ref,
       std::uint64_t insts)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces %s of \"Loop-Aware Memory Prefetching "
                "Using Code Block Working\nSets\" (MICRO 2014). "
                "%llu committed instructions per run "
                "(CBWS_BENCH_INSTS overrides).\n",
                paper_ref.c_str(),
                static_cast<unsigned long long>(insts));
    std::printf("==============================================="
                "=============================\n\n");
}

ExperimentMatrix
fullMatrix(std::uint64_t insts)
{
    SystemConfig config; // Table II defaults
    return runMatrix(allWorkloads(), allPrefetcherKinds(), config,
                     insts);
}

std::string
pct(double fraction, int precision)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

} // namespace bench
} // namespace cbws
