/**
 * @file
 * Regenerates Fig. 13: timeliness and accuracy of the competing
 * prefetchers, as percentages of demand L2 accesses, in the paper's
 * five categories — timely, shorter-waiting-time, non-timely,
 * missing, wrong (wrong can exceed 100%).
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"

using namespace cbws;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    const std::uint64_t insts = benchInstructionBudget();
    bench::banner("Figure 13 - prefetch timeliness and accuracy "
                  "(% of demand L2 accesses)",
                  "Figure 13", insts);

    auto matrix = bench::fullMatrix(insts);

    TextTable table;
    table.header({"benchmark", "scheme", "timely", "shorter",
                  "non-timely", "missing", "wrong"});

    auto emit = [&table](const std::string &name,
                         const SimResult &r) {
        table.row({name, r.prefetcher,
                   bench::pct(r.classFraction(DemandClass::Timely)),
                   bench::pct(r.classFraction(DemandClass::Shorter)),
                   bench::pct(
                       r.classFraction(DemandClass::NonTimely)),
                   bench::pct(r.classFraction(DemandClass::Missing)),
                   bench::pct(r.wrongFraction())});
    };

    for (const auto &row : matrix.rows) {
        if (!row.memoryIntensive)
            continue;
        for (const auto &res : row.byPrefetcher) {
            if (res.prefetcher == "No-Prefetch")
                continue;
            emit(row.workload, res);
        }
    }

    // Averages over the MI group and all benchmarks.
    for (bool mi_only : {true, false}) {
        for (std::size_t k = 1; k < matrix.schemes.size(); ++k) {
            auto avg = [&](auto metric) {
                return matrix.average(
                    [&](const WorkloadRow &r) {
                        return metric(r.byPrefetcher[k]);
                    },
                    mi_only);
            };
            table.row(
                {mi_only ? "average-MI" : "average-ALL",
                 matrix.schemes[k],
                 bench::pct(avg([](const SimResult &r) {
                     return r.classFraction(DemandClass::Timely);
                 })),
                 bench::pct(avg([](const SimResult &r) {
                     return r.classFraction(DemandClass::Shorter);
                 })),
                 bench::pct(avg([](const SimResult &r) {
                     return r.classFraction(DemandClass::NonTimely);
                 })),
                 bench::pct(avg([](const SimResult &r) {
                     return r.classFraction(DemandClass::Missing);
                 })),
                 bench::pct(avg([](const SimResult &r) {
                     return r.wrongFraction();
                 }))});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper: CBWS achieves the best accuracy (wrong ~5%% MI / "
        "~4%% all); integrating CBWS\ninto SMS raises timely "
        "accesses (24%%->31%% MI) and roughly halves SMS's wrong\n"
        "prefetches.\n");
    return 0;
}
