/**
 * @file
 * Regenerates Fig. 1: fraction of runtime spent executing tight,
 * innermost loops for the 15 memory-intensive benchmarks.
 *
 * The paper reports that, on average, over 70% of the MI benchmarks'
 * runtime is spent in tight loops. We attribute every simulated cycle
 * to the annotated block (if any) the commit head belongs to, on the
 * no-prefetch configuration.
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"
#include "workloads/registry.hh"

using namespace cbws;

int
main()
{
    const std::uint64_t insts = benchInstructionBudget();
    bench::banner("Figure 1 - runtime fraction in tight innermost "
                  "loops",
                  "Figure 1", insts);

    SystemConfig config;
    WorkloadParams params;
    params.maxInstructions = insts;

    TextTable table;
    table.header({"benchmark", "loop", "non-loop"});
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &w : memoryIntensiveWorkloads()) {
        SimResult r = simulateWorkload(*w, config, params);
        const double loop = r.core.loopFraction();
        table.row({r.workload, bench::pct(loop),
                   bench::pct(1.0 - loop)});
        sum += loop;
        ++n;
    }
    table.row({"average", bench::pct(sum / n),
               bench::pct(1.0 - sum / n)});
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper: >70%% of MI-benchmark runtime is inside "
                "tight innermost loops on average.\nMeasured "
                "average: %s\n",
                bench::pct(sum / n).c_str());
    return 0;
}
