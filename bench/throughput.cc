/**
 * @file
 * Simulator throughput harness: times the full experiment matrix
 * serially and with the configured worker count, reports simulated
 * (committed) instructions per wall-clock second for both, and checks
 * the two result sets are bit-identical. Machine-readable results go
 * to BENCH_sim_throughput.json for CI trend tracking, stamped with
 * build provenance; run with --profile to embed the host-side
 * per-phase breakdown explaining where the wall time went.
 *
 * The serial leg always runs with jobs=1; the parallel leg uses
 * --jobs / CBWS_JOBS, falling back to the hardware thread count. When
 * a trace cache is configured it is primed before timing starts, so
 * neither leg pays synthesis costs the other does not.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "base/json.hh"
#include "base/profiler.hh"
#include "base/threadpool.hh"
#include "base/version.hh"
#include "common.hh"
#include "workloads/registry.hh"

using namespace cbws;

namespace
{

double
seconds(std::chrono::steady_clock::time_point begin,
        std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

/** Committed (post-warmup) instructions summed over every cell. */
std::uint64_t
simulatedInstructions(const ExperimentMatrix &matrix)
{
    std::uint64_t total = 0;
    for (const auto &row : matrix.rows)
        for (const auto &res : row.byPrefetcher)
            total += res.core.instructions;
    return total;
}

/** Bitwise comparison of two runs of the same matrix. */
bool
identicalResults(const ExperimentMatrix &a, const ExperimentMatrix &b)
{
    if (a.rows.size() != b.rows.size())
        return false;
    for (std::size_t r = 0; r < a.rows.size(); ++r) {
        const auto &ra = a.rows[r].byPrefetcher;
        const auto &rb = b.rows[r].byPrefetcher;
        if (ra.size() != rb.size())
            return false;
        for (std::size_t k = 0; k < ra.size(); ++k) {
            if (ra[k].workload != rb[k].workload ||
                ra[k].prefetcher != rb[k].prefetcher ||
                ra[k].prefetcherStorageBits !=
                    rb[k].prefetcherStorageBits ||
                std::memcmp(&ra[k].core, &rb[k].core,
                            sizeof(ra[k].core)) != 0 ||
                std::memcmp(&ra[k].mem, &rb[k].mem,
                            sizeof(ra[k].mem)) != 0) {
                return false;
            }
        }
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    const std::uint64_t insts = benchInstructionBudget(60000);
    bench::banner("Simulator throughput (wall-clock, full matrix)",
                  "the methodology (Sec. 5)", insts);

    MatrixOptions opts = bench::matrixOptions();
    const unsigned parallel_jobs =
        opts.jobs ? opts.jobs : ThreadPool::jobsFromEnv(0);

    const auto workloads = allWorkloads();
    const auto schemes = allSchemeNames();
    const std::size_t cells = workloads.size() * schemes.size();
    SystemConfig config; // Table II defaults

    // Prime the trace cache so both timed legs read identical inputs
    // with identical effort (all hits, or no cache at all).
    if (opts.traceCache) {
        WorkloadParams params;
        params.maxInstructions = insts;
        params.seed = 42;
        for (const auto &wl : workloads) {
            const TraceCache::Key key{wl->name(), insts, 42};
            Trace trace;
            if (opts.traceCache->load(key, trace).ok())
                continue;
            trace.reserve(insts + 512);
            wl->generate(trace, params);
            opts.traceCache->store(key, trace);
        }
        std::printf("Trace cache primed: %s\n\n",
                    opts.traceCache->directory().c_str());
    }

    std::printf("Matrix: %zu workloads x %zu prefetchers = %zu "
                "cells\n\n",
                workloads.size(), schemes.size(), cells);

    MatrixOptions serial_opts = opts;
    serial_opts.jobs = 1;
    auto t0 = std::chrono::steady_clock::now();
    const ExperimentMatrix serial =
        runMatrix(workloads, schemes, config, insts, 42, serial_opts);
    auto t1 = std::chrono::steady_clock::now();
    const double serial_s = seconds(t0, t1);
    const std::uint64_t sim_insts = simulatedInstructions(serial);
    const double serial_ips =
        serial_s > 0 ? static_cast<double>(sim_insts) / serial_s : 0;
    std::printf("serial    jobs=1    %8.2f s   %12.0f inst/s\n",
                serial_s, serial_ips);

    const unsigned hardware_threads =
        std::thread::hardware_concurrency();

    // Fixed jobs=2 scaling leg: a stable point for the CI scaling
    // gate, independent of how many threads the runner happens to
    // have. Skipped on single-threaded hosts, where "scaling" would
    // only measure oversubscription.
    bool ran_jobs2 = false;
    double jobs2_s = 0.0, jobs2_ips = 0.0;
    bool jobs2_identical = true;
    if (hardware_threads >= 2) {
        MatrixOptions jobs2_opts = opts;
        jobs2_opts.jobs = 2;
        t0 = std::chrono::steady_clock::now();
        const ExperimentMatrix jobs2 = runMatrix(
            workloads, schemes, config, insts, 42, jobs2_opts);
        t1 = std::chrono::steady_clock::now();
        jobs2_s = seconds(t0, t1);
        jobs2_ips = jobs2_s > 0
            ? static_cast<double>(sim_insts) / jobs2_s : 0;
        ran_jobs2 = true;
        jobs2_identical = identicalResults(serial, jobs2);
        std::printf("scaling   jobs=2    %8.2f s   %12.0f inst/s\n",
                    jobs2_s, jobs2_ips);
    }

    MatrixOptions parallel_opts = opts;
    parallel_opts.jobs = parallel_jobs;
    t0 = std::chrono::steady_clock::now();
    const ExperimentMatrix parallel = runMatrix(
        workloads, schemes, config, insts, 42, parallel_opts);
    t1 = std::chrono::steady_clock::now();
    const double parallel_s = seconds(t0, t1);
    const double parallel_ips =
        parallel_s > 0 ? static_cast<double>(sim_insts) / parallel_s
                       : 0;
    std::printf("parallel  jobs=%-4u %8.2f s   %12.0f inst/s\n",
                parallel_jobs, parallel_s, parallel_ips);

    const double speedup =
        parallel_s > 0 ? serial_s / parallel_s : 0;
    const double jobs2_speedup =
        ran_jobs2 && jobs2_s > 0 ? serial_s / jobs2_s : 0;
    const bool identical =
        identicalResults(serial, parallel) && jobs2_identical;
    if (ran_jobs2)
        std::printf("\njobs=2 speedup: %.2fx", jobs2_speedup);
    std::printf("\nspeedup: %.2fx   results identical: %s\n", speedup,
                identical ? "yes" : "NO (determinism bug!)");

    JsonWriter w;
    w.beginObject();
    w.field("bench", "sim_throughput");
    w.key("provenance");
    writeProvenance(w);
    w.field("instructions_per_run", insts);
    w.field("cells", static_cast<std::uint64_t>(cells));
    w.field("simulated_instructions", sim_insts);
    w.field("hardware_threads",
            static_cast<std::uint64_t>(hardware_threads));
    w.key("serial");
    w.beginObject();
    w.field("jobs", static_cast<std::uint64_t>(1));
    w.field("seconds", serial_s);
    w.field("instructions_per_second", serial_ips);
    w.endObject();
    if (ran_jobs2) {
        w.key("jobs2");
        w.beginObject();
        w.field("jobs", static_cast<std::uint64_t>(2));
        w.field("seconds", jobs2_s);
        w.field("instructions_per_second", jobs2_ips);
        w.field("speedup", jobs2_speedup);
        w.endObject();
    }
    w.key("parallel");
    w.beginObject();
    w.field("jobs", static_cast<std::uint64_t>(parallel_jobs));
    w.field("seconds", parallel_s);
    w.field("instructions_per_second", parallel_ips);
    w.endObject();
    w.field("speedup", speedup);
    w.field("identical", identical);
    w.field("trace_cache",
            opts.traceCache ? opts.traceCache->directory() : "");
    if (prof::enabled()) {
        // Run with --profile: embed the host-side phase/worker
        // breakdown covering all timed legs, so the trend artifact
        // explains *where* the wall time went, not just how much.
        const prof::Report rep = prof::report();
        w.key("profile");
        prof::writeJson(w, rep);
        // Derived per-phase throughput: simulated instructions per
        // exclusive second spent in each phase, over every timed leg.
        // "How fast would the simulator be if only this phase
        // existed" — the inverse directly ranks optimization targets.
        const unsigned legs = 2u + (ran_jobs2 ? 1u : 0u);
        const double total_insts =
            static_cast<double>(sim_insts) * legs;
        w.key("phase_instructions_per_second");
        w.beginObject();
        for (unsigned p = 0; p < prof::NumPhases; ++p) {
            if (rep.phaseSeconds[p] <= 0.0)
                continue;
            w.field(prof::toString(static_cast<prof::Phase>(p)),
                    total_insts / rep.phaseSeconds[p]);
        }
        w.endObject();
    }
    w.endObject();

    std::FILE *json = std::fopen("BENCH_sim_throughput.json", "w");
    if (json) {
        std::fprintf(json, "%s\n", w.str().c_str());
        std::fclose(json);
        std::printf("wrote BENCH_sim_throughput.json\n");
    } else {
        std::fprintf(stderr,
                     "could not write BENCH_sim_throughput.json\n");
    }
    return identical ? 0 : 1;
}
