/**
 * @file
 * Regenerates Fig. 12: last-level-cache misses per kilo-instruction
 * for every benchmark under all seven prefetching configurations
 * (lower is better).
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"

using namespace cbws;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    const std::uint64_t insts = benchInstructionBudget();
    bench::banner("Figure 12 - LLC misses per kilo-instruction "
                  "(lower is better)",
                  "Figure 12", insts);

    auto matrix = bench::fullMatrix(insts);

    TextTable table;
    std::vector<std::string> header = {"benchmark"};
    for (const auto &scheme : matrix.schemes)
        header.push_back(scheme);
    table.header(header);

    auto emit_avg = [&](const char *label, bool mi_only) {
        std::vector<std::string> row = {label};
        for (std::size_t k = 0; k < matrix.schemes.size(); ++k) {
            const double avg = matrix.average(
                [&](const WorkloadRow &r) {
                    return r.byPrefetcher[k].mpki();
                },
                mi_only);
            row.push_back(TextTable::num(avg, 2));
        }
        table.row(row);
    };

    for (const auto &row : matrix.rows) {
        if (!row.memoryIntensive)
            continue;
        std::vector<std::string> cells = {row.workload};
        for (const auto &res : row.byPrefetcher)
            cells.push_back(TextTable::num(res.mpki(), 2));
        table.row(cells);
    }
    emit_avg("average-MI", true);
    emit_avg("average-ALL", false);
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper: CBWS+SMS delivers the lowest MPKI on average and on "
        "all benchmarks except\nlibquantum and fft (tying SMS on "
        "bzip2); standalone CBWS eliminates misses on\n"
        "block-structured benchmarks (sgemm, radix) but trails SMS "
        "on fft/streamcluster.\n");
    return 0;
}
