/**
 * @file
 * Regenerates Fig. 14: performance of the prefetchers as IPC
 * normalised to the SMS baseline (higher is better), for the
 * memory-intensive group and the low-MPKI group.
 *
 * Headline result: CBWS+SMS outperforms SMS by ~1.31x on the MI
 * group and ~1.16x over all 30 benchmarks.
 */

#include <cstdio>

#include "base/table.hh"
#include "common.hh"

using namespace cbws;

namespace
{

void
emitGroup(const ExperimentMatrix &matrix, bool mi_group)
{
    TextTable table;
    std::vector<std::string> header = {"benchmark"};
    for (const auto &scheme : matrix.schemes)
        header.push_back(scheme);
    table.header(header);

    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
        const auto &row = matrix.rows[r];
        if (row.memoryIntensive != mi_group)
            continue;
        const double sms = matrix.result(r, "SMS").ipc();
        std::vector<std::string> cells = {row.workload};
        for (const auto &res : row.byPrefetcher)
            cells.push_back(TextTable::num(res.ipc() / sms, 2));
        table.row(cells);
    }
    std::printf("%s\n", table.render().c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    const std::uint64_t insts = benchInstructionBudget();
    bench::banner("Figure 14 - IPC normalised to SMS (higher is "
                  "better)",
                  "Figure 14", insts);

    auto matrix = bench::fullMatrix(insts);

    std::printf("-- memory-intensive group --\n");
    emitGroup(matrix, true);
    std::printf("-- low-MPKI group --\n");
    emitGroup(matrix, false);

    TextTable summary;
    std::vector<std::string> header = {"geomean"};
    for (const auto &scheme : matrix.schemes)
        header.push_back(scheme);
    summary.header(header);
    for (bool mi_only : {true, false}) {
        std::vector<std::string> cells = {
            mi_only ? "MI group" : "all benchmarks"};
        for (std::size_t k = 0; k < matrix.schemes.size(); ++k) {
            const double g = bench::geomean(
                matrix,
                [&](std::size_t r) {
                    return matrix.rows[r].byPrefetcher[k].ipc() /
                           matrix.result(r, "SMS").ipc();
                },
                mi_only);
            cells.push_back(TextTable::num(g, 2));
        }
        summary.row(cells);
    }
    std::printf("%s\n", summary.render().c_str());

    const double mi = bench::geomean(
        matrix,
        [&](std::size_t r) {
            return matrix.result(r, "CBWS+SMS").ipc() /
                   matrix.result(r, "SMS").ipc();
        },
        true);
    const double all = bench::geomean(
        matrix,
        [&](std::size_t r) {
            return matrix.result(r, "CBWS+SMS").ipc() /
                   matrix.result(r, "SMS").ipc();
        },
        false);
    std::printf("Headline: CBWS+SMS over SMS = %.2fx (MI; paper "
                "1.31x), %.2fx (all; paper 1.16x).\n",
                mi, all);
    return 0;
}
