/**
 * @file
 * Structural tests of the per-kernel features that the paper's
 * benchmark-specific observations depend on (docs/PAPER_NOTES.md,
 * Section VII table). If a kernel edit breaks the property that makes
 * its benchmark behave as the paper reports, these tests catch it
 * before the figure benches drift.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "workloads/registry.hh"

namespace cbws
{
namespace
{

/** Distinct-lines-per-block statistics for a workload's trace. */
struct BlockProfile
{
    std::vector<std::set<LineAddr>> blocks;
    double
    meanLines() const
    {
        if (blocks.empty())
            return 0.0;
        std::size_t sum = 0;
        for (const auto &b : blocks)
            sum += b.size();
        return static_cast<double>(sum) / blocks.size();
    }
    double
    fractionOver(unsigned limit) const
    {
        if (blocks.empty())
            return 0.0;
        std::size_t n = 0;
        for (const auto &b : blocks)
            n += b.size() > limit;
        return static_cast<double>(n) / blocks.size();
    }
};

BlockProfile
profile(const std::string &name, std::uint64_t insts = 20000)
{
    auto w = findWorkload(name);
    EXPECT_NE(w, nullptr);
    WorkloadParams params;
    params.maxInstructions = insts;
    Trace t;
    w->generate(t, params);
    EXPECT_EQ(t.validate(), "");

    BlockProfile p;
    std::set<LineAddr> current;
    bool in_block = false;
    for (const auto &rec : t) {
        if (rec.cls == InstClass::BlockBegin) {
            current.clear();
            in_block = true;
        } else if (rec.cls == InstClass::BlockEnd && in_block) {
            p.blocks.push_back(current);
            in_block = false;
        } else if (in_block && isMemory(rec.cls)) {
            current.insert(rec.line());
        }
    }
    return p;
}

TEST(KernelClaims, Bzip2BlocksExceedCbwsCapacity)
{
    // Section VII-C: "bzip2 uses loops that perform large buffer
    // reads ... the CBWS prefetcher only traces working sets that
    // consist of up to 16 cache lines."
    auto p = profile("401.bzip2-source");
    EXPECT_GT(p.fractionOver(16), 0.9);
}

TEST(KernelClaims, MostBenchmarksFitSixteenLines)
{
    // Section IV-A: "16 lines are sufficient to map the entire
    // working set of over 98% of the dynamic code blocks" — bzip2
    // and lbm are the deliberate exceptions.
    for (const char *name :
         {"stencil-default", "sgemm-medium", "nw", "radix-simlarge",
          "433.milc-su3imp", "462.libquantum-ref",
          "429.mcf-ref", "450.soplex-ref"}) {
        auto p = profile(name);
        EXPECT_LT(p.fractionOver(16), 0.02) << name;
    }
}

TEST(KernelClaims, StencilIterationShape)
{
    // Fig. 3: seven data lines plus the cached coefficient line(s).
    auto p = profile("stencil-default");
    EXPECT_GE(p.meanLines(), 7.0);
    EXPECT_LE(p.meanLines(), 10.0);
}

TEST(KernelClaims, StencilConstantInterIterationStride)
{
    // Fig. 4: within an inner-loop run, every A0 stream advances by
    // nx*ny floats per iteration (a constant line stride).
    auto w = findWorkload("stencil-default");
    WorkloadParams params;
    params.maxInstructions = 4000;
    Trace t;
    w->generate(t, params);

    // Collect the per-iteration line of the "k+1 neighbour" site
    // (the third load inside each block).
    std::vector<LineAddr> third_load;
    unsigned mem_idx = 0;
    bool in_block = false;
    for (const auto &rec : t) {
        if (rec.cls == InstClass::BlockBegin) {
            in_block = true;
            mem_idx = 0;
        } else if (rec.cls == InstClass::BlockEnd) {
            in_block = false;
        } else if (in_block && isMemory(rec.cls)) {
            if (mem_idx == 2)
                third_load.push_back(rec.line());
            ++mem_idx;
        }
    }
    ASSERT_GT(third_load.size(), 50u);
    // Skip the first few iterations; strides must be constant within
    // the inner run.
    std::map<std::int64_t, unsigned> stride_counts;
    for (std::size_t i = 11; i < 50; ++i) {
        stride_counts[static_cast<std::int64_t>(third_load[i]) -
                      static_cast<std::int64_t>(third_load[i - 1])]++;
    }
    // One dominant constant stride.
    unsigned best = 0;
    for (const auto &[stride, count] : stride_counts)
        best = std::max(best, count);
    EXPECT_GE(best, 37u);
}

TEST(KernelClaims, SgemmBlockTouchesFourBColumnLines)
{
    // The unrolled k-loop reads four B lines, one A line (usually
    // shared) per block: 4-6 distinct lines.
    auto p = profile("sgemm-medium");
    EXPECT_GE(p.meanLines(), 4.0);
    EXPECT_LE(p.meanLines(), 7.0);
}

TEST(KernelClaims, HistoAccessIsDataDependent)
{
    // Fig. 16: the histogram update address depends on loaded pixel
    // values — across seeds the histogram stream must differ while
    // the image stream stays identical.
    auto w = findWorkload("histo-large");
    WorkloadParams p1, p2;
    p1.maxInstructions = p2.maxInstructions = 6000;
    p1.seed = 10;
    p2.seed = 20;
    Trace a, b;
    w->generate(a, p1);
    w->generate(b, p2);
    const std::size_t n = std::min(a.size(), b.size());
    bool histo_differs = false;
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i].cls != b[i].cls || !isMemory(a[i].cls))
            continue;
        // Image loads are the first access of each block (site 1).
        if (a[i].pc == b[i].pc && a[i].effAddr != b[i].effAddr)
            histo_differs = true;
    }
    EXPECT_TRUE(histo_differs);
}

TEST(KernelClaims, SoplexBlocksDivergeInSize)
{
    // Section VII-A: "the code blocks in soplex consist of loops
    // that include many branches. The branch divergence ... results
    // in access patterns that are hard to predict."
    auto p = profile("450.soplex-ref");
    std::set<std::size_t> sizes;
    for (const auto &b : p.blocks)
        sizes.insert(b.size());
    EXPECT_GE(sizes.size(), 2u);
}

TEST(KernelClaims, StreamclusterHasManyDistinctFirstLines)
{
    // Section VII-A: streamcluster "has a large number of distinct
    // differential vectors" — the centre row hops data-dependently.
    auto w = findWorkload("streamcluster-simlarge");
    WorkloadParams params;
    params.maxInstructions = 20000;
    Trace t;
    w->generate(t, params);
    std::set<std::int64_t> center_deltas;
    LineAddr prev = 0;
    bool have_prev = false;
    unsigned mem_idx = 0;
    bool in_block = false;
    for (const auto &rec : t) {
        if (rec.cls == InstClass::BlockBegin) {
            in_block = true;
            mem_idx = 0;
        } else if (rec.cls == InstClass::BlockEnd) {
            in_block = false;
        } else if (in_block && isMemory(rec.cls)) {
            if (mem_idx == 1) { // the first centre-row load
                if (have_prev) {
                    center_deltas.insert(
                        static_cast<std::int64_t>(rec.line()) -
                        static_cast<std::int64_t>(prev));
                }
                prev = rec.line();
                have_prev = true;
            }
            ++mem_idx;
        }
    }
    EXPECT_GT(center_deltas.size(), 50u);
}

TEST(KernelClaims, LibquantumIsPureStreaming)
{
    // Every data line is touched exactly once per pass: unit-stride
    // streaming with no reuse across blocks.
    auto p = profile("462.libquantum-ref");
    std::set<LineAddr> all;
    std::size_t total = 0;
    for (const auto &b : p.blocks) {
        for (LineAddr l : b) {
            all.insert(l);
            ++total;
        }
    }
    EXPECT_EQ(all.size(), total); // no line in two blocks
}

TEST(KernelClaims, EveryKernelTraceValidates)
{
    WorkloadParams params;
    params.maxInstructions = 8000;
    for (const auto &w : allWorkloads()) {
        Trace t;
        w->generate(t, params);
        EXPECT_EQ(t.validate(), "") << w->name();
    }
}

} // anonymous namespace
} // namespace cbws
