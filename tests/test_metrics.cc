/**
 * @file
 * Tests of the hierarchical metrics registry (base/metrics.hh), the
 * statistics primitives it depends on (base/stats.hh RunningStat and
 * Histogram), and the sim-side registration (sim/simmetrics.hh):
 * dumpText must stay byte-identical to the historical statsdump
 * format, and the registry built from a SimResult must render exactly
 * the lines dumpStats emits.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/jsonparse.hh"
#include "base/metrics.hh"
#include "base/stats.hh"
#include "sim/simmetrics.hh"
#include "sim/statsdump.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

TEST(MetricsRegistry, RegistrationOrderAndKinds)
{
    MetricsRegistry reg;
    reg.addScalar("sim.instructions", 1000, "instructions retired");
    reg.addReal("sim.ipc", 1.5, "instructions per cycle");
    reg.addVector("l1d.demand", {7, 3, 0}, "demand classification");
    Histogram h(4, 10.0);
    h.sample(5.0);
    h.sample(25.0);
    reg.addHistogram("pf.lateness", h, "prefetch lateness");
    reg.addFormula("l1d.missRate", 0.25, "misses / accesses",
                   "L1D miss rate");

    ASSERT_EQ(reg.size(), 5u);
    EXPECT_FALSE(reg.empty());
    // metrics() preserves registration order — the text dump and the
    // JSON section both depend on it.
    EXPECT_EQ(reg.metrics()[0].path, "sim.instructions");
    EXPECT_EQ(reg.metrics()[4].path, "l1d.missRate");
    EXPECT_EQ(reg.metrics()[0].kind, MetricsRegistry::Kind::Scalar);
    EXPECT_EQ(reg.metrics()[1].kind, MetricsRegistry::Kind::Real);
    EXPECT_EQ(reg.metrics()[2].kind, MetricsRegistry::Kind::Vector);
    EXPECT_EQ(reg.metrics()[3].kind,
              MetricsRegistry::Kind::Histogram);
    EXPECT_EQ(reg.metrics()[4].kind, MetricsRegistry::Kind::Formula);
    EXPECT_EQ(reg.metrics()[4].expr, "misses / accesses");
}

TEST(MetricsRegistry, FindAndSubtreeRespectDotBoundaries)
{
    MetricsRegistry reg;
    reg.addScalar("core0.l1d.misses", 10, "d");
    reg.addScalar("core0.l1d.hits", 90, "d");
    reg.addScalar("core01.l1d.misses", 5, "d");
    reg.addScalar("core0", 1, "d");

    const MetricsRegistry::Metric *m = reg.find("core0.l1d.misses");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->uintValue, 10u);
    EXPECT_EQ(reg.find("core0.l1d"), nullptr);
    EXPECT_EQ(reg.find("nope"), nullptr);

    // "core0" must match "core0.l1d.*" and "core0" itself but never
    // "core01.*" — prefix matching is per dotted component.
    std::vector<const MetricsRegistry::Metric *> sub =
        reg.subtree("core0");
    ASSERT_EQ(sub.size(), 3u);
    for (const auto *metric : sub)
        EXPECT_EQ(metric->path.rfind("core01", 0), std::string::npos)
            << metric->path;
    EXPECT_EQ(reg.subtree("core0.l1d").size(), 2u);
    EXPECT_EQ(reg.subtree("core01").size(), 1u);
}

TEST(MetricsRegistry, DumpTextMatchesStatsdumpLineFormat)
{
    MetricsRegistry reg;
    reg.addScalar("sim.instructions", 20000,
                  "simulated instructions retired");
    reg.addReal("sim.ipc", 0.5, "instructions per cycle");
    reg.addVector("hidden.vector", {1, 2}, "must not appear");
    std::ostringstream out;
    reg.dumpText(out);

    // The historical statsdump layout: left-justified name in 40
    // columns, right-justified value in 16, two spaces, "# desc".
    std::istringstream lines(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line,
              "sim.instructions                        "
              "           20000  # simulated instructions retired");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line.rfind("sim.ipc", 0), 0u);
    EXPECT_NE(line.find("0.5"), std::string::npos);
    // Vector metrics are JSON-only: the text dump must skip them so
    // registry adoption can never change golden statsdump bytes.
    EXPECT_FALSE(std::getline(lines, line)) << "extra line: " << line;
}

TEST(MetricsRegistry, WriteJsonRendersEveryKind)
{
    MetricsRegistry reg;
    reg.addScalar("a.count", 42, "count");
    reg.addReal("a.ratio", 0.75, "ratio");
    reg.addVector("a.vec", {1, 2, 3}, "vector");
    Histogram h(2, 5.0);
    h.sample(1.0);
    h.sample(100.0); // overflow
    reg.addHistogram("a.hist", h, "histogram");
    reg.addFormula("a.rate", 0.5, "x / y", "rate");

    JsonWriter w;
    reg.writeJson(w);
    ASSERT_TRUE(w.balanced());
    Result<JsonValue> doc = parseJson(w.str());
    ASSERT_TRUE(doc.ok()) << doc.error().str() << "\n" << w.str();
    const JsonValue &root = doc.value();
    ASSERT_TRUE(root.isObject());

    EXPECT_EQ(root.uintOr("a.count"), 42u);
    const JsonValue *ratio = root.find("a.ratio");
    ASSERT_NE(ratio, nullptr);
    EXPECT_DOUBLE_EQ(ratio->number, 0.75);
    const JsonValue *vec = root.find("a.vec");
    ASSERT_NE(vec, nullptr);
    ASSERT_TRUE(vec->isArray());
    ASSERT_EQ(vec->array.size(), 3u);
    EXPECT_EQ(vec->array[2].uintValue, 3u);
    const JsonValue *hist = root.find("a.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->uintOr("overflow"), 1u);
    const JsonValue *rate = root.find("a.rate");
    ASSERT_NE(rate, nullptr);
    EXPECT_EQ(rate->strOr("expr"), "x / y");
}

TEST(SimMetrics, RegistryRendersExactlyTheStatsdumpBody)
{
    auto w = findWorkload("stencil-default");
    ASSERT_NE(w, nullptr);
    SystemConfig cfg;
    cfg.prefetcher = PrefetcherKind::CbwsSms;
    WorkloadParams params;
    params.maxInstructions = 10000;
    SimResult r = simulateWorkload(*w, cfg, params);

    // dumpStats == banner + workload line + registry text + banner.
    // This is the single-source-of-truth guarantee: there is no
    // second serializer that could drift from the registry.
    std::ostringstream full;
    dumpStats(full, r);
    std::ostringstream body;
    simMetrics(r).dumpText(body);
    EXPECT_NE(full.str().find(body.str()), std::string::npos);

    const MetricsRegistry reg = simMetrics(r);
    const MetricsRegistry::Metric *insts =
        reg.find("sim.instructions");
    ASSERT_NE(insts, nullptr);
    EXPECT_EQ(insts->uintValue, r.core.instructions);
    EXPECT_FALSE(reg.subtree("l1d").empty());
    EXPECT_FALSE(reg.subtree("pf").empty());
    EXPECT_FALSE(reg.subtree("dram").empty());
}

TEST(RunningStat, WelfordMatchesClosedFormOnKnownSet)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // Population variance of the classic Wikipedia set is exactly 4.
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, KahanSumSurvivesMagnitudeSpread)
{
    // Naive summation of 1e16 + 1.0 * N loses every unit increment;
    // the compensated sum must keep them all.
    RunningStat s;
    s.sample(1e16);
    for (int i = 0; i < 1000; ++i)
        s.sample(1.0);
    EXPECT_DOUBLE_EQ(s.sum() - 1e16, 1000.0);
}

TEST(Histogram, OverflowIsExplicitAndCountedInLastBucket)
{
    Histogram h(4, 10.0);
    h.sample(5.0);        // bucket 0
    h.sample(35.0);       // bucket 3 (last)
    h.sample(1000.0);     // overflow -> also folded into last bucket
    h.sample(39.999);     // bucket 3
    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 10.0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 0u);
    EXPECT_EQ(h.bucket(3), 3u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, MergeAddsCountsTotalsAndOverflow)
{
    Histogram a(4, 10.0), b(4, 10.0);
    a.sample(5.0);
    a.sample(500.0);
    b.sample(15.0, 3);
    b.sample(500.0);
    a.merge(b);
    EXPECT_EQ(a.bucket(0), 1u);
    EXPECT_EQ(a.bucket(1), 3u);
    EXPECT_EQ(a.overflow(), 2u);
    EXPECT_EQ(a.total(), 6u);
}

} // anonymous namespace
} // namespace cbws
