/**
 * @file
 * Multi-core simulation: single-core equivalence, lockstep
 * determinism at any matrix job count, per-core/aggregate counter
 * reconciliation, cross-core pollution attribution, and the v3
 * report/checkpoint schemas.
 */

#include <gtest/gtest.h>

#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

constexpr std::uint64_t kInsts = 8000;

Trace
makeTrace(const std::string &workload, std::uint64_t insts = kInsts)
{
    auto w = findWorkload(workload);
    EXPECT_NE(w, nullptr) << workload;
    WorkloadParams params;
    params.maxInstructions = insts;
    Trace t;
    w->generate(t, params);
    return t;
}

/** Shared-L2-stressing config: a small L2 and the paper's best
 *  prefetcher, so cross-core interference shows at test budgets. */
SystemConfig
contendedConfig(unsigned cores)
{
    SystemConfig cfg;
    cfg.prefetcher = PrefetcherKind::CbwsSms;
    cfg.mem.numCores = cores;
    cfg.mem.l2.sizeBytes = 64 * 1024;
    return cfg;
}

SimResult
runMix(unsigned cores, const std::vector<std::string> &mix,
       const std::vector<Trace> &traces,
       std::uint64_t warmup = kInsts / 4)
{
    std::vector<const Trace *> core_traces;
    std::vector<std::string> core_names;
    for (unsigned c = 0; c < cores; ++c) {
        core_traces.push_back(&traces[c % traces.size()]);
        core_names.push_back(mix[c % mix.size()]);
    }
    return simulateMulti(core_traces, core_names,
                         contendedConfig(cores), kInsts, SimProbes(),
                         warmup);
}

TEST(Multicore, SingleCoreMatchesSimulate)
{
    const Trace t = makeTrace("stencil-default");
    SystemConfig cfg = contendedConfig(1);

    SimResult single =
        simulate(t, cfg, kInsts, SimProbes(), kInsts / 4);
    single.workload = "stencil-default";

    SimResult multi = simulateMulti({&t}, {"stencil-default"}, cfg,
                                    kInsts, SimProbes(), kInsts / 4);

    // Byte-identical reports — the CI golden diff rests on this.
    EXPECT_EQ(toJson(single), toJson(multi));
    EXPECT_EQ(multi.cores, 1u);
    EXPECT_TRUE(multi.perCore.empty());
    EXPECT_TRUE(multi.mem.perCore.empty());
}

TEST(Multicore, DeterministicAcrossRuns)
{
    const std::vector<std::string> mix = {"stencil-default", "nw"};
    const std::vector<Trace> traces = {makeTrace(mix[0]),
                                       makeTrace(mix[1])};
    const SimResult a = runMix(2, mix, traces);
    const SimResult b = runMix(2, mix, traces);
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_EQ(a.mem, b.mem);
}

TEST(Multicore, MatrixDeterministicAcrossJobCounts)
{
    // Same seed and --cores=2 must give byte-identical reports at
    // any worker count: multi-core cells still write preassigned
    // slots and share only read-only traces.
    std::vector<WorkloadPtr> ws;
    for (const char *name : {"stencil-default", "nw"})
        ws.push_back(findWorkload(name));
    const std::vector<PrefetcherKind> kinds = {
        PrefetcherKind::None, PrefetcherKind::CbwsSms};
    SystemConfig cfg = contendedConfig(2);

    MatrixOptions serial;
    serial.jobs = 1;
    MatrixOptions wide;
    wide.jobs = 4;
    const auto m1 = runMatrix(ws, kinds, cfg, kInsts, 42, serial);
    const auto m4 = runMatrix(ws, kinds, cfg, kInsts, 42, wide);

    ASSERT_EQ(m1.rows.size(), m4.rows.size());
    for (std::size_t r = 0; r < m1.rows.size(); ++r) {
        ASSERT_EQ(m1.rows[r].byPrefetcher.size(),
                  m4.rows[r].byPrefetcher.size());
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            const SimResult &a = m1.rows[r].byPrefetcher[k];
            const SimResult &b = m4.rows[r].byPrefetcher[k];
            EXPECT_EQ(toJson(a), toJson(b))
                << m1.rows[r].workload << " / " << toString(kinds[k]);
            EXPECT_EQ(a.cores, 2u);
        }
    }
}

TEST(Multicore, PerCoreCountersReconcileWithAggregate)
{
    // Property: every shared-L2 aggregate counter is exactly the sum
    // of its per-core attributions (no access is lost or
    // double-counted by the ownership tracking).
    const std::vector<std::string> mix = {"radix-simlarge",
                                          "lbm-long"};
    const std::vector<Trace> traces = {makeTrace(mix[0]),
                                       makeTrace(mix[1])};
    for (unsigned cores : {2u, 3u, 4u}) {
        const SimResult r = runMix(cores, mix, traces);
        ASSERT_EQ(r.mem.perCore.size(), cores);
        ASSERT_EQ(r.perCore.size(), cores);

        std::uint64_t insts = 0, l1d_acc = 0, l1d_miss = 0;
        std::uint64_t l2_acc = 0, l2_miss = 0, pf_req = 0;
        std::uint64_t pf_issued = 0, victims = 0, caused = 0;
        std::uint64_t resident = 0;
        for (const auto &pc : r.mem.perCore) {
            l1d_acc += pc.l1dAccesses;
            l1d_miss += pc.l1dMisses;
            l2_acc += pc.demandL2Accesses;
            l2_miss += pc.llcDemandMisses;
            pf_req += pc.prefetchesRequested;
            pf_issued += pc.prefetchesIssued;
            victims += pc.pollutionVictimMisses;
            caused += pc.pollutionCausedMisses;
            resident += pc.l2ResidentLines;
        }
        for (const auto &slice : r.perCore)
            insts += slice.core.instructions;

        EXPECT_EQ(insts, r.core.instructions) << cores;
        EXPECT_EQ(l1d_acc, r.mem.l1dAccesses) << cores;
        EXPECT_EQ(l1d_miss, r.mem.l1dMisses) << cores;
        EXPECT_EQ(l2_acc, r.mem.demandL2Accesses) << cores;
        EXPECT_EQ(l2_miss, r.mem.llcDemandMisses) << cores;
        EXPECT_EQ(pf_req, r.mem.prefetchesRequested) << cores;
        EXPECT_EQ(pf_issued, r.mem.prefetchesIssued) << cores;
        // Every attributed pollution miss has exactly one victim and
        // one (distinct) aggressor core.
        EXPECT_EQ(victims, r.mem.crossCorePollutionMisses) << cores;
        EXPECT_EQ(caused, r.mem.crossCorePollutionMisses) << cores;
        // Owned resident lines can never exceed the L2's capacity.
        const SystemConfig cfg = contendedConfig(cores);
        EXPECT_LE(resident, cfg.mem.l2.sizeBytes / LineBytes)
            << cores;
        // Per-core MPKI recomposes the aggregate MPKI.
        double weighted = 0.0;
        for (const auto &slice : r.perCore)
            weighted += slice.mpki() *
                        static_cast<double>(slice.core.instructions);
        EXPECT_NEAR(weighted / static_cast<double>(insts), r.mpki(),
                    1e-9)
            << cores;
    }
}

TEST(Multicore, FourCoreContentionAttributesPollution)
{
    const std::vector<std::string> mix = {"radix-simlarge",
                                          "lbm-long"};
    const std::vector<Trace> traces = {makeTrace(mix[0]),
                                       makeTrace(mix[1])};
    const SimResult r = runMix(4, mix, traces);

    EXPECT_GT(r.mem.crossCorePollutionMisses, 0u);
    EXPECT_GT(r.mem.l2BankConflicts, 0u);

    // The v3 report carries the interference section.
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
    EXPECT_NE(json.find("\"cores\":4"), std::string::npos);
    EXPECT_NE(json.find("\"per_core\":["), std::string::npos);
    EXPECT_NE(json.find("\"interference\":{"), std::string::npos);
    EXPECT_NE(json.find("\"cross_core_pollution_misses\":"),
              std::string::npos);
}

TEST(Multicore, SingleCoreReportStaysV2)
{
    const Trace t = makeTrace("stencil-default");
    const SimResult r = simulate(t, contendedConfig(1), kInsts,
                                 SimProbes(), kInsts / 4);
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
    EXPECT_EQ(json.find("\"cores\""), std::string::npos);
    EXPECT_EQ(json.find("\"per_core\""), std::string::npos);
    EXPECT_EQ(json.find("\"interference\""), std::string::npos);
}

TEST(Multicore, CheckpointRoundTripsMulticoreCells)
{
    const std::vector<std::string> mix = {"stencil-default", "nw"};
    const std::vector<Trace> traces = {makeTrace(mix[0]),
                                       makeTrace(mix[1])};
    const SimResult r = runMix(2, mix, traces);

    Result<SimResult> back =
        parseCheckpointCell(checkpointCellLine(r));
    ASSERT_TRUE(back.ok()) << back.error().str();
    EXPECT_EQ(back.value().cores, r.cores);
    EXPECT_EQ(back.value().mem, r.mem);
    ASSERT_EQ(back.value().perCore.size(), r.perCore.size());
    for (std::size_t c = 0; c < r.perCore.size(); ++c) {
        EXPECT_EQ(back.value().perCore[c].workload,
                  r.perCore[c].workload);
        EXPECT_EQ(back.value().perCore[c].core.cycles,
                  r.perCore[c].core.cycles);
        EXPECT_EQ(back.value().perCore[c].core.instructions,
                  r.perCore[c].core.instructions);
        EXPECT_EQ(back.value().perCore[c].mem,
                  r.perCore[c].mem);
    }
    // The resumed cell re-serialises byte-identically — resumed
    // matrix reports cannot drift.
    EXPECT_EQ(checkpointCellLine(back.value()), checkpointCellLine(r));
    EXPECT_EQ(toJson(back.value()), toJson(r));
}

} // anonymous namespace
} // namespace cbws
