/**
 * @file
 * Unit tests for the generic CBWS add-on wrapper (CBWS bolted onto an
 * arbitrary base prefetcher).
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "prefetch/addon.hh"
#include "prefetch/ampm.hh"
#include "prefetch/stride.hh"
#include "sim/config.hh"
#include "test_util.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

std::unique_ptr<CbwsAddOnPrefetcher>
makeCbwsStride()
{
    return std::make_unique<CbwsAddOnPrefetcher>(
        std::make_unique<StridePrefetcher>());
}

TEST(CbwsAddOn, NameReflectsBase)
{
    EXPECT_EQ(makeCbwsStride()->name(), "CBWS+Stride");
    CbwsAddOnPrefetcher ampm(std::make_unique<AmpmPrefetcher>());
    EXPECT_EQ(ampm.name(), "CBWS+AMPM");
}

TEST(CbwsAddOn, StorageIsSum)
{
    auto addon = makeCbwsStride();
    StridePrefetcher stride;
    CbwsPrefetcher cbws;
    EXPECT_EQ(addon->storageBits(),
              stride.storageBits() + cbws.storageBits());
}

TEST(CbwsAddOn, BaseIssuesWhenCbwsSilent)
{
    auto addon = makeCbwsStride();
    MockSink sink;
    // A strided stream outside any block: the base (stride) issues.
    for (int i = 0; i < 8; ++i)
        addon->observeAccess(memCtx(0x400, i * 128ull), sink);
    EXPECT_FALSE(sink.issued.empty());
}

TEST(CbwsAddOn, CbwsPredictsInsideBlocks)
{
    auto addon = makeCbwsStride();
    MockSink sink;
    for (unsigned b = 0; b < 24; ++b) {
        addon->blockBegin(1, sink);
        addon->observeCommit(memCtx(0x700, (9000 + b * 4ull) * 64),
                             sink);
        addon->blockEnd(1, sink);
    }
    EXPECT_TRUE(addon->cbws().lastBlockPredicted());
    EXPECT_TRUE(sink.wasIssued(9000 + 24ull * 4));
}

TEST(CbwsAddOn, BaseMutedWhileCbwsConfident)
{
    auto addon = makeCbwsStride();
    MockSink sink;
    for (unsigned b = 0; b < 24; ++b) {
        addon->blockBegin(1, sink);
        addon->observeCommit(memCtx(0x700, (9000 + b * 4ull) * 64),
                             sink);
        addon->blockEnd(1, sink);
    }
    ASSERT_TRUE(addon->cbws().lastBlockPredicted());

    // Inside a confident block, drive a trained stride stream: its
    // issues must be suppressed, not forwarded.
    addon->blockBegin(1, sink);
    const auto before = addon->suppressedBaseIssues();
    for (int i = 0; i < 8; ++i) {
        addon->observeAccess(
            memCtx(0x900, 0x4000000 + i * 128ull), sink);
    }
    EXPECT_GT(addon->suppressedBaseIssues(), before);
    for (LineAddr l : sink.issued)
        EXPECT_LT(l, 0x4000000u / 64); // nothing from the base stream
}

TEST(CbwsAddOn, UnmutedAfterBlockEnds)
{
    auto addon = makeCbwsStride();
    MockSink sink;
    Random rng(7);
    // Unpredictable blocks: CBWS never confident, base never muted.
    for (unsigned b = 0; b < 10; ++b) {
        addon->blockBegin(2, sink);
        addon->observeCommit(
            memCtx(0x700, rng.below(1 << 26) * 64), sink);
        addon->blockEnd(2, sink);
    }
    EXPECT_FALSE(addon->cbws().lastBlockPredicted());
    sink.issued.clear();
    for (int i = 0; i < 8; ++i) {
        addon->observeAccess(
            memCtx(0x900, 0x8000000 + i * 128ull), sink);
    }
    EXPECT_FALSE(sink.issued.empty());
}

TEST(CbwsAddOn, EndToEndThroughConfig)
{
    SystemConfig config;
    config.prefetcher = PrefetcherKind::CbwsAmpm;
    auto pf = makePrefetcher(config);
    EXPECT_EQ(pf->name(), "CBWS+AMPM");
    EXPECT_EQ(toString(PrefetcherKind::Ampm), std::string("AMPM"));
    EXPECT_EQ(extendedPrefetcherKinds().size(),
              allPrefetcherKinds().size() + 2);
}

} // anonymous namespace
} // namespace cbws
