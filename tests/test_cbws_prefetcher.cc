/**
 * @file
 * Unit tests for the CBWS prefetcher itself: Algorithm 1's tracking,
 * differential learning, multi-step prediction and the standalone
 * confidence rule.
 */

#include <gtest/gtest.h>

#include "core/cbws_prefetcher.hh"
#include "test_util.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

/** Drive one block of accesses at the given lines. */
void
runBlock(CbwsPrefetcher &pf, MockSink &sink, BlockId id,
         std::initializer_list<LineAddr> lines)
{
    pf.blockBegin(id, sink);
    for (LineAddr l : lines)
        pf.observeCommit(memCtx(0x400, lineBase(l)), sink);
    pf.blockEnd(id, sink);
}

TEST(CbwsPrefetcher, TracksOnlyInsideBlocks)
{
    CbwsPrefetcher pf;
    MockSink sink;
    pf.observeCommit(memCtx(0x400, 0x1000), sink);
    EXPECT_EQ(pf.schemeStats().accessesOutsideBlock, 1u);
    EXPECT_EQ(pf.schemeStats().accessesTracked, 0u);
}

TEST(CbwsPrefetcher, CurrentCbwsDeduplicates)
{
    CbwsPrefetcher pf;
    MockSink sink;
    pf.blockBegin(1, sink);
    pf.observeCommit(memCtx(0x400, 0x1000), sink);
    pf.observeCommit(memCtx(0x404, 0x1008), sink); // same line
    pf.observeCommit(memCtx(0x408, 0x2000), sink);
    EXPECT_EQ(pf.currentCbws().size(), 2u);
}

TEST(CbwsPrefetcher, PredictsConstantStridePattern)
{
    // Blocks walk two streams: lines advance by +4 and +16 per block.
    CbwsPrefetcher pf;
    MockSink sink;
    const unsigned blocks = 24;
    for (unsigned b = 0; b < blocks; ++b) {
        runBlock(pf, sink, 1,
                 {1000 + b * 4ull, 50000 + b * 16ull});
    }
    const auto &s = pf.schemeStats();
    EXPECT_EQ(s.blocksCompleted, blocks);
    EXPECT_GT(s.tableHits, 0u);
    EXPECT_GT(s.linesPredicted, 0u);
    // The most recent block is n = blocks-1; step-k predictions
    // target blocks n+k.
    const std::uint64_t n = blocks - 1;
    EXPECT_TRUE(sink.wasIssued(1000 + (n + 1) * 4));
    EXPECT_TRUE(sink.wasIssued(50000 + (n + 1) * 16));
    EXPECT_TRUE(sink.wasIssued(1000 + (n + 4) * 4));
    EXPECT_TRUE(sink.wasIssued(50000 + (n + 4) * 16));
}

TEST(CbwsPrefetcher, SilentWithoutTableHit)
{
    // Random working sets: no history repeats, so the standalone
    // confidence rule must keep the prefetcher quiet.
    CbwsPrefetcher pf;
    MockSink sink;
    Random rng(5);
    for (unsigned b = 0; b < 50; ++b) {
        runBlock(pf, sink, 1,
                 {rng.below(1 << 28), rng.below(1 << 28),
                  rng.below(1 << 28)});
    }
    // A 16-bit tag over random histories rarely collides; allow a few.
    EXPECT_LT(sink.issued.size(), 12u);
    EXPECT_GT(pf.schemeStats().tableMisses,
              pf.schemeStats().tableHits);
}

TEST(CbwsPrefetcher, SkipsCachedLines)
{
    CbwsPrefetcher pf;
    MockSink sink;
    // Mark the whole predicted range as cached.
    for (LineAddr l = 0; l < 200000; ++l)
        if (l % 4 == 0)
            sink.cached.insert(l);
    for (unsigned b = 0; b < 24; ++b)
        runBlock(pf, sink, 1, {1000 + b * 4ull});
    // Every predicted line (stride 4 from 1000) is cached -> nothing
    // issued ("skipping addresses that are already cached").
    EXPECT_TRUE(sink.issued.empty());
    EXPECT_GT(pf.schemeStats().tableHits, 0u);
}

TEST(CbwsPrefetcher, BlockIdSwitchClearsContext)
{
    CbwsPrefetcher pf;
    MockSink sink;
    for (unsigned b = 0; b < 12; ++b)
        runBlock(pf, sink, 1, {1000 + b * 4ull});
    EXPECT_GT(pf.schemeStats().tableHits, 0u);
    const auto hits_before = pf.schemeStats().tableHits;

    // A different static block discards last-CBWS buffers and
    // histories: the first block of id 2 has no history to look up.
    // (Later blocks may alias id-1 table entries: the table itself is
    // shared hardware and is deliberately not cleared.)
    runBlock(pf, sink, 2, {90000});
    EXPECT_EQ(pf.schemeStats().tableHits, hits_before);
}

TEST(CbwsPrefetcher, TruncationAtSixteenLines)
{
    CbwsPrefetcher pf;
    MockSink sink;
    pf.blockBegin(3, sink);
    for (unsigned i = 0; i < 24; ++i)
        pf.observeCommit(memCtx(0x400, i * 64ull * 100), sink);
    pf.blockEnd(3, sink);
    EXPECT_EQ(pf.schemeStats().blocksTruncated, 1u);
    EXPECT_EQ(pf.schemeStats().accessesTracked, 16u);
}

TEST(CbwsPrefetcher, UnpairedBlockEndIsDropped)
{
    CbwsPrefetcher pf;
    MockSink sink;
    pf.blockEnd(9, sink); // never begun
    EXPECT_EQ(pf.schemeStats().blocksCompleted, 0u);
    // Mismatched id also drops.
    pf.blockBegin(1, sink);
    pf.observeCommit(memCtx(0x400, 0x1000), sink);
    pf.blockEnd(2, sink);
    EXPECT_EQ(pf.schemeStats().blocksCompleted, 0u);
}

TEST(CbwsPrefetcher, MissesOnlyTrainingFilter)
{
    CbwsParams params;
    params.trainOnHits = false;
    CbwsPrefetcher pf(params);
    MockSink sink;
    pf.blockBegin(1, sink);
    pf.observeCommit(memCtx(0x400, 0x1000, false, /*l1_hit=*/true),
                     sink);
    pf.observeCommit(memCtx(0x404, 0x2000, false, /*l1_hit=*/false),
                     sink);
    EXPECT_EQ(pf.currentCbws().size(), 1u);
}

TEST(CbwsPrefetcher, DifferentialProbeSamplesPerBlock)
{
    CbwsPrefetcher pf;
    FrequencyCounter probe;
    pf.setDifferentialProbe(&probe);
    MockSink sink;
    for (unsigned b = 0; b < 20; ++b)
        runBlock(pf, sink, 1, {1000 + b * 4ull});
    // One 1-step differential per block after the first.
    EXPECT_EQ(probe.total(), 19u);
    // Constant stride -> a single distinct differential vector.
    EXPECT_EQ(probe.distinct(), 1u);
}

TEST(CbwsPrefetcher, StorageBudgetUnder1KB)
{
    CbwsPrefetcher pf;
    EXPECT_LT(pf.storageBits(), 8192u); // < 1 KB, as the paper claims
    EXPECT_GT(pf.storageBits(), 4096u); // but not trivially small
}

TEST(CbwsPrefetcher, LastBlockPredictedFlag)
{
    CbwsPrefetcher pf;
    MockSink sink;
    EXPECT_FALSE(pf.lastBlockPredicted());
    for (unsigned b = 0; b < 16; ++b)
        runBlock(pf, sink, 1, {1000 + b * 4ull});
    EXPECT_TRUE(pf.lastBlockPredicted());
    EXPECT_FALSE(pf.inBlock());
    pf.blockBegin(1, sink);
    EXPECT_TRUE(pf.inBlock());
}

TEST(CbwsPrefetcher, BranchDivergenceDegradesPrediction)
{
    // Alternating working-set sizes (the soplex failure mode): the
    // differential stream mixes sizes, so hit rate drops sharply
    // compared to the uniform case.
    auto hit_fraction = [](bool diverge) {
        CbwsPrefetcher pf;
        MockSink sink;
        Random rng(3);
        for (unsigned b = 0; b < 200; ++b) {
            pf.blockBegin(1, sink);
            pf.observeCommit(memCtx(0x400, (1000 + b * 4ull) * 64),
                             sink);
            pf.observeCommit(memCtx(0x404, (50000 + b * 8ull) * 64),
                             sink);
            if (diverge && rng.chance(0.5)) {
                pf.observeCommit(
                    memCtx(0x408, rng.below(1 << 20) * 64), sink);
            }
            pf.blockEnd(1, sink);
        }
        const auto &s = pf.schemeStats();
        return static_cast<double>(s.tableHits) /
               static_cast<double>(s.tableHits + s.tableMisses);
    };
    EXPECT_GT(hit_fraction(false), 0.8);
    EXPECT_LT(hit_fraction(true), hit_fraction(false) * 0.8);
}

TEST(CbwsPrefetcher, MultiStepDepthConfigurable)
{
    CbwsParams params;
    params.numSteps = 2;
    CbwsPrefetcher pf(params);
    MockSink sink;
    for (unsigned b = 0; b < 24; ++b)
        runBlock(pf, sink, 1, {1000 + b * 4ull});
    const std::uint64_t n = 24 - 1;
    EXPECT_TRUE(sink.wasIssued(1000 + (n + 2) * 4));
    EXPECT_FALSE(sink.wasIssued(1000 + (n + 4) * 4));
}

} // anonymous namespace
} // namespace cbws
