/**
 * @file
 * Unit tests for the CBWS correlation hardware: history shift
 * registers and the fully-associative differential history table
 * (Section V-A).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/diff_table.hh"

namespace cbws
{
namespace
{

CbwsDifferential
diffOf(std::initializer_list<int> strides)
{
    CbwsDifferential d;
    for (int s : strides)
        d.append(static_cast<std::int16_t>(s));
    return d;
}

TEST(HistoryShiftRegister, FillsToDepth)
{
    HistoryShiftRegister h(3, 12);
    EXPECT_FALSE(h.full());
    h.push(1);
    h.push(2);
    EXPECT_EQ(h.size(), 2u);
    EXPECT_FALSE(h.full());
    h.push(3);
    EXPECT_TRUE(h.full());
    h.push(4); // oldest (1) falls out
    EXPECT_EQ(h.size(), 3u);
}

TEST(HistoryShiftRegister, TagDependsOnContents)
{
    HistoryShiftRegister a(3, 12), b(3, 12);
    a.push(0x111);
    a.push(0x222);
    a.push(0x333);
    b.push(0x111);
    b.push(0x222);
    b.push(0x333);
    EXPECT_EQ(a.tag(16), b.tag(16));
    b.push(0x444);
    EXPECT_NE(a.tag(16), b.tag(16));
}

TEST(HistoryShiftRegister, TagOrderSensitive)
{
    HistoryShiftRegister a(2, 12), b(2, 12);
    a.push(0x0AB);
    a.push(0xCD0);
    b.push(0xCD0);
    b.push(0x0AB);
    EXPECT_NE(a.tag(16), b.tag(16));
}

TEST(HistoryShiftRegister, TagWidthBounded)
{
    HistoryShiftRegister h(4, 12); // 48 bits folded to 16 (the paper)
    h.push(0xFFF);
    h.push(0xFFF);
    h.push(0xFFF);
    h.push(0xFFF);
    EXPECT_LT(h.tag(16), 1u << 16);
    EXPECT_LT(h.tag(8), 1u << 8);
}

TEST(HistoryShiftRegister, Clear)
{
    HistoryShiftRegister h(3, 12);
    h.push(1);
    h.clear();
    EXPECT_EQ(h.size(), 0u);
}

TEST(DifferentialTable, InsertAndLookup)
{
    DifferentialTable t(16);
    EXPECT_EQ(t.lookup(0x1234), nullptr);
    t.insert(0x1234, diffOf({1, 2, 3}));
    const auto *d = t.lookup(0x1234);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(*d == diffOf({1, 2, 3}));
    EXPECT_EQ(t.occupancy(), 1u);
}

TEST(DifferentialTable, UpdateInPlace)
{
    DifferentialTable t(16);
    t.insert(7, diffOf({1}));
    t.insert(7, diffOf({9, 9}));
    const auto *d = t.lookup(7);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(*d == diffOf({9, 9}));
    EXPECT_EQ(t.occupancy(), 1u);
}

TEST(DifferentialTable, CapacityEnforced)
{
    DifferentialTable t(16);
    for (std::uint16_t tag = 0; tag < 40; ++tag)
        t.insert(tag, diffOf({tag}));
    EXPECT_EQ(t.occupancy(), 16u);
    // Recent entries mostly survive random eviction; at least some
    // of the inserted tags must be resident.
    unsigned hits = 0;
    for (std::uint16_t tag = 0; tag < 40; ++tag)
        hits += t.lookup(tag) != nullptr;
    EXPECT_EQ(hits, 16u);
}

TEST(DifferentialTable, RandomEvictionIsDeterministicPerSeed)
{
    auto survivors = [](std::uint64_t seed) {
        DifferentialTable t(4, seed);
        for (std::uint16_t tag = 0; tag < 12; ++tag)
            t.insert(tag, diffOf({tag}));
        std::set<std::uint16_t> s;
        for (std::uint16_t tag = 0; tag < 12; ++tag)
            if (t.lookup(tag))
                s.insert(tag);
        return s;
    };
    EXPECT_EQ(survivors(1), survivors(1));
    // Different seeds should (overwhelmingly) evict differently.
    EXPECT_NE(survivors(1), survivors(99));
}

TEST(DifferentialTable, Clear)
{
    DifferentialTable t(8);
    t.insert(1, diffOf({1}));
    t.clear();
    EXPECT_EQ(t.occupancy(), 0u);
    EXPECT_EQ(t.lookup(1), nullptr);
}

TEST(DifferentialTable, SixteenEntriesMatchesPaper)
{
    DifferentialTable t(16);
    EXPECT_EQ(t.capacity(), 16u);
}

} // anonymous namespace
} // namespace cbws
