/**
 * @file
 * Crash-safe checkpoint/resume: cell lines must round-trip
 * bit-exactly, torn or corrupted lines must be dropped (never
 * trusted, never fatal), mismatched experiments and schema versions
 * must be rejected at open(), and a matrix resumed from a partial
 * checkpoint must be bit-identical to an uninterrupted run at any
 * job count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "base/faultinject.hh"
#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

/** FNV-1a, mirrored from the format so tests can forge sealed
 *  lines (wrong schema version under a *valid* checksum). */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
seal(const std::string &object_text)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fnv1a(object_text)));
    std::string out = object_text;
    out.insert(out.size() - 1,
               std::string(",\"crc\":\"") + hex + "\"");
    return out;
}

/** A SimResult with every serialised field holding a distinct,
 *  recognisable value. */
SimResult
makeResult(std::uint64_t salt = 0)
{
    SimResult r;
    r.workload = "unit-workload";
    r.prefetcher = "CBWS+SMS";
    r.prefetcherStorageBits = 12345 + salt;
    r.core.cycles = 1000001 + salt;
    r.core.instructions = 900002 + salt;
    r.core.memInstructions = 300003 + salt;
    r.core.branches = 100004 + salt;
    r.core.branchMispredicts = 5005 + salt;
    r.core.loopCycles = 600006 + salt;
    r.core.robFullStalls = 7007 + salt;
    r.core.lsqFullStalls = 808 + salt;
    r.mem.l1dAccesses = 400009 + salt;
    r.mem.l1dMisses = 30010 + salt;
    r.mem.l1iAccesses = 500011 + salt;
    r.mem.l1iMisses = 1212 + salt;
    r.mem.demandL2Accesses = 31013 + salt;
    r.mem.llcDemandMisses = 14014 + salt;
    r.mem.wrongPrefetches = 1515 + salt;
    r.mem.prefetchesRequested = 20016 + salt;
    r.mem.prefetchesIssued = 18017 + salt;
    r.mem.prefetchesFiltered = 1818 + salt;
    r.mem.prefetchesDropped = 191 + salt;
    r.mem.dramBytesRead = 9000020 + salt;
    r.mem.dramBytesWritten = 2100021 + salt;
    r.mem.mshrStalls = 2222 + salt;
    std::uint64_t v = 31 + salt;
    for (auto &c : r.mem.classCounts)
        c = v++;
    for (auto &c : r.mem.latenessHist)
        c = v++;
    for (auto &life : r.mem.pfLife) {
        life.issued = v++;
        life.dropped = v++;
        life.merged = v++;
        life.filled = v++;
        life.demandHitTimely = v++;
        life.demandHitLate = v++;
        life.evictedUnused = v++;
        life.residentAtEnd = v++;
        life.latenessCycles = v++;
    }
    r.dramBackend = "ddr";
    r.mem.dram.reads = v++;
    r.mem.dram.writes = v++;
    r.mem.dram.rowHits = v++;
    r.mem.dram.rowMisses = v++;
    r.mem.dram.rowClosed = v++;
    r.mem.dram.activates = v++;
    r.mem.dram.fawStalls = v++;
    r.mem.dram.refreshStalls = v++;
    r.mem.dram.prefetchesDeferred = v++;
    r.mem.dram.deferralCycles = v++;
    r.mem.dram.readQueueFullStalls = v++;
    r.mem.dram.writeDrains = v++;
    r.mem.dram.busBusyCycles = v++;
    r.mem.dram.readQueueDepthSum = v++;
    r.mem.dram.writeQueueDepthSum = v++;
    return r;
}

::testing::AssertionResult
cellsIdentical(const SimResult &a, const SimResult &b)
{
    if (a.workload != b.workload)
        return ::testing::AssertionFailure()
               << "workload: " << a.workload << " vs " << b.workload;
    if (a.prefetcher != b.prefetcher)
        return ::testing::AssertionFailure()
               << "prefetcher: " << a.prefetcher << " vs "
               << b.prefetcher;
    if (a.prefetcherStorageBits != b.prefetcherStorageBits)
        return ::testing::AssertionFailure() << "storage bits differ";
    if (std::memcmp(&a.core, &b.core, sizeof(a.core)) != 0)
        return ::testing::AssertionFailure()
               << a.workload << "/" << a.prefetcher
               << ": CoreStats differ";
    if (a.mem != b.mem)
        return ::testing::AssertionFailure()
               << a.workload << "/" << a.prefetcher
               << ": HierarchyStats differ";
    if (a.dramBackend != b.dramBackend)
        return ::testing::AssertionFailure()
               << "dram backend: " << a.dramBackend << " vs "
               << b.dramBackend;
    return ::testing::AssertionSuccess();
}

TEST(CheckpointCell, LineRoundTripsBitExactly)
{
    const SimResult original = makeResult();
    const std::string line = checkpointCellLine(original);

    Result<SimResult> parsed = parseCheckpointCell(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error().str();
    EXPECT_TRUE(cellsIdentical(original, parsed.value()));

    // The strongest form: re-serialising the parsed cell reproduces
    // the identical line, checksum and all.
    EXPECT_EQ(checkpointCellLine(parsed.value()), line);
}

TEST(CheckpointCell, TamperedLineFailsItsChecksum)
{
    std::string line = checkpointCellLine(makeResult());
    // Flip one digit somewhere in the payload.
    const std::size_t at = line.find("12345");
    ASSERT_NE(at, std::string::npos);
    line[at] = '9';

    Result<SimResult> parsed = parseCheckpointCell(line);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.code(), Errc::Corrupt);
}

TEST(CheckpointCell, TruncatedLineIsCorruptNotACrash)
{
    const std::string line = checkpointCellLine(makeResult());
    for (std::size_t keep : {std::size_t(0), std::size_t(1),
                             line.size() / 2, line.size() - 1}) {
        Result<SimResult> parsed =
            parseCheckpointCell(line.substr(0, keep));
        EXPECT_FALSE(parsed.ok()) << "kept " << keep << " bytes";
        EXPECT_EQ(parsed.code(), Errc::Corrupt);
    }
}

TEST(CheckpointCell, WrongSchemaVersionIsRejectedAsSuch)
{
    // Forge a line whose checksum is valid but whose schema_version
    // is from the future: the diagnostic must say "version", not
    // "corrupt".
    const std::string line = checkpointCellLine(makeResult());
    const std::string marker = ",\"crc\":\"";
    std::string object = line.substr(0, line.rfind(marker)) + "}";
    const std::string old =
        "\"schema_version\":" +
        std::to_string(CheckpointSchemaVersion);
    const std::size_t at = object.find(old);
    ASSERT_NE(at, std::string::npos);
    object.replace(at, old.size(), "\"schema_version\":99");

    Result<SimResult> parsed = parseCheckpointCell(seal(object));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.code(), Errc::VersionMismatch);
}

TEST(CheckpointFingerprint, SensitiveToNamesAndOrder)
{
    const std::uint64_t base =
        checkpointFingerprint({"a", "b"}, {"x", "y"});
    EXPECT_NE(base, checkpointFingerprint({"a"}, {"x", "y"}));
    EXPECT_NE(base, checkpointFingerprint({"b", "a"}, {"x", "y"}));
    EXPECT_NE(base, checkpointFingerprint({"a", "b"}, {"x"}));
    // The separator must keep {"ab"} and {"a","b"} apart.
    EXPECT_NE(checkpointFingerprint({"ab"}, {}),
              checkpointFingerprint({"a", "b"}, {}));
    EXPECT_EQ(base, checkpointFingerprint({"a", "b"}, {"x", "y"}));
}

/** Temp directory per test. */
class CheckpointFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/cbws-checkpoint-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        path_ = dir_ + "/matrix.ckpt";
    }

    void
    TearDown() override
    {
        const std::string cmd = "rm -rf '" + dir_ + "'";
        if (std::system(cmd.c_str()) != 0)
            ADD_FAILURE() << "cleanup failed: " << cmd;
        FaultInjector::instance().reset();
    }

    static Checkpoint::Header
    header(std::uint64_t insts = 8000, std::uint64_t seed = 42)
    {
        Checkpoint::Header h;
        h.insts = insts;
        h.seed = seed;
        h.fingerprint = checkpointFingerprint({"unit-workload"},
                                              {"CBWS+SMS", "CBWS"});
        return h;
    }

    std::vector<std::string>
    readLines() const
    {
        std::ifstream in(path_);
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
        return lines;
    }

    void
    writeLines(const std::vector<std::string> &lines,
               const std::string &unterminated_tail = "") const
    {
        std::ofstream out(path_, std::ios::trunc);
        for (const auto &line : lines)
            out << line << "\n";
        out << unterminated_tail;
    }

    std::string dir_;
    std::string path_;
};

TEST_F(CheckpointFileTest, FreshFileThenReopenRestoresCells)
{
    const SimResult a = makeResult(0);
    SimResult b = makeResult(1000);
    b.prefetcher = "CBWS";
    {
        Checkpoint ckpt;
        ASSERT_TRUE(ckpt.open(path_, header()));
        EXPECT_EQ(ckpt.resumedCells(), 0u);
        ASSERT_TRUE(ckpt.append(a));
        ASSERT_TRUE(ckpt.append(b));
        // Duplicate appends are ignored, not double-written.
        ASSERT_TRUE(ckpt.append(a));
    }
    EXPECT_EQ(readLines().size(), 4u)
        << "header + provenance + 2 cells";

    Checkpoint resumed;
    ASSERT_TRUE(resumed.open(path_, header()));
    EXPECT_EQ(resumed.resumedCells(), 2u);
    const SimResult *ra = resumed.find("unit-workload", "CBWS+SMS");
    const SimResult *rb = resumed.find("unit-workload", "CBWS");
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_TRUE(cellsIdentical(a, *ra));
    EXPECT_TRUE(cellsIdentical(b, *rb));
    EXPECT_EQ(resumed.find("unit-workload", "Stride"), nullptr);
}

TEST_F(CheckpointFileTest, TornTailLineIsDroppedOnResume)
{
    {
        Checkpoint ckpt;
        ASSERT_TRUE(ckpt.open(path_, header()));
        ASSERT_TRUE(ckpt.append(makeResult()));
    }
    // Simulate a SIGKILL mid-append: a second cell line cut off
    // without its trailing bytes or newline.
    auto lines = readLines();
    ASSERT_EQ(lines.size(), 3u) << "header + provenance + 1 cell";
    const std::string torn = lines[2].substr(0, lines[2].size() / 2);
    writeLines(lines, torn);

    Checkpoint resumed;
    ASSERT_TRUE(resumed.open(path_, header()));
    EXPECT_EQ(resumed.resumedCells(), 1u)
        << "the intact cell survives, the torn one is dropped";
}

TEST_F(CheckpointFileTest, DifferentExperimentIsRejected)
{
    {
        Checkpoint ckpt;
        ASSERT_TRUE(ckpt.open(path_, header(8000, 42)));
    }
    struct Case
    {
        const char *what;
        Checkpoint::Header h;
    };
    Checkpoint::Header other_fp = header(8000, 42);
    other_fp.fingerprint ^= 1;
    const Case cases[] = {
        {"different budget", header(9000, 42)},
        {"different seed", header(8000, 43)},
        {"different cell space", other_fp},
    };
    for (const auto &c : cases) {
        Checkpoint ckpt;
        Result<void> r = ckpt.open(path_, c.h);
        ASSERT_FALSE(r.ok()) << c.what;
        EXPECT_EQ(r.code(), Errc::InvalidArgument) << c.what;
        EXPECT_NE(r.error().message.find("different experiment"),
                  std::string::npos)
            << c.what;
    }
}

TEST_F(CheckpointFileTest, FutureSchemaVersionIsRejectedAsSuch)
{
    writeLines({seal("{\"schema_version\":99,\"type\":\"header\","
                     "\"format\":\"cbws-checkpoint\",\"insts\":8000,"
                     "\"seed\":42,\"fingerprint\":"
                     "\"0000000000000000\"}")});
    Checkpoint ckpt;
    Result<void> r = ckpt.open(path_, header());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::VersionMismatch);
}

TEST_F(CheckpointFileTest, GarbageFileIsCorruptNotFatal)
{
    writeLines({"this is not a checkpoint"});
    Checkpoint ckpt;
    Result<void> r = ckpt.open(path_, header());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::Corrupt);
}

TEST_F(CheckpointFileTest, AppendFaultDegradesToUncheckpointedCell)
{
    Checkpoint ckpt;
    ASSERT_TRUE(ckpt.open(path_, header()));
    // Fire on every attempt: the 3-try retry loop must exhaust and
    // report the injected failure instead of aborting the run.
    FaultInjector::instance().arm(FaultSite::CheckpointAppend, 1.0);
    Result<void> r = ckpt.append(makeResult());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::FaultInjected);
    EXPECT_GE(FaultInjector::instance().hits(
                  FaultSite::CheckpointAppend),
              3u)
        << "append must have retried";

    // Disarm: the next append (of the same cell) succeeds — the
    // failure was transient, the checkpoint object still works.
    FaultInjector::instance().reset();
    ASSERT_TRUE(ckpt.append(makeResult()));
    EXPECT_EQ(readLines().size(), 3u)
        << "header + provenance + the recovered cell";
}

/** Matrix-level resume determinism. */
class CheckpointResumeTest : public CheckpointFileTest
{
  protected:
    void
    SetUp() override
    {
        CheckpointFileTest::SetUp();
        for (const char *name : {"fft-simlarge", "stencil-default"}) {
            auto w = findWorkload(name);
            ASSERT_NE(w, nullptr) << name;
            workloads_.push_back(std::move(w));
        }
        kinds_ = {PrefetcherKind::None, PrefetcherKind::Stride,
                  PrefetcherKind::Cbws};
    }

    ExperimentMatrix
    run(unsigned jobs, const std::string &checkpoint = "")
    {
        MatrixOptions options;
        options.jobs = jobs;
        options.checkpointPath = checkpoint;
        SystemConfig config;
        return runMatrix(workloads_, kinds_, config, insts_, 42,
                         options);
    }

    static ::testing::AssertionResult
    matricesIdentical(const ExperimentMatrix &a,
                      const ExperimentMatrix &b)
    {
        if (a.rows.size() != b.rows.size())
            return ::testing::AssertionFailure() << "row count";
        for (std::size_t r = 0; r < a.rows.size(); ++r) {
            if (a.rows[r].byPrefetcher.size() !=
                b.rows[r].byPrefetcher.size())
                return ::testing::AssertionFailure() << "cell count";
            for (std::size_t k = 0; k < a.rows[r].byPrefetcher.size();
                 ++k) {
                auto cell =
                    cellsIdentical(a.rows[r].byPrefetcher[k],
                                   b.rows[r].byPrefetcher[k]);
                if (!cell)
                    return cell;
            }
        }
        return ::testing::AssertionSuccess();
    }

    std::vector<WorkloadPtr> workloads_;
    std::vector<PrefetcherKind> kinds_;
    static constexpr std::uint64_t insts_ = 8000;
};

TEST_F(CheckpointResumeTest, PartialCheckpointResumesBitIdentically)
{
    // Reference: an uninterrupted, uncheckpointed run.
    const ExperimentMatrix reference = run(1);

    // A full checkpointed run leaves header + provenance + 6 cell
    // lines; cutting it back to 3 cells mimics a SIGKILL halfway through the
    // matrix (the driver-level smoke test kills a real process; the
    // unit test recreates the identical on-disk state).
    const ExperimentMatrix full = run(1, path_);
    EXPECT_TRUE(matricesIdentical(reference, full))
        << "checkpointing must not perturb results";
    auto lines = readLines();
    ASSERT_EQ(lines.size(), 2u + 6u);
    lines.resize(2 + 3);

    for (unsigned jobs : {1u, 8u}) {
        writeLines(lines);
        const ExperimentMatrix resumed = run(jobs, path_);
        EXPECT_TRUE(matricesIdentical(reference, resumed))
            << "jobs=" << jobs;
        EXPECT_EQ(readLines().size(), 2u + 6u)
            << "resume must complete the file (jobs=" << jobs << ")";
    }
}

TEST_F(CheckpointResumeTest, CompletedCheckpointSkipsAllSimulation)
{
    const ExperimentMatrix first = run(1, path_);
    const auto lines = readLines();

    // Resuming a finished matrix restores every cell and appends
    // nothing new.
    const ExperimentMatrix again = run(4, path_);
    EXPECT_TRUE(matricesIdentical(first, again));
    EXPECT_EQ(readLines(), lines) << "no rewrites on a no-op resume";
}

TEST_F(CheckpointResumeTest, PoolFaultFallsBackToSerialAndMatches)
{
    const ExperimentMatrix reference = run(1);

    // One injected job failure in the parallel phase: runMatrix
    // must catch it, finish the missing cells serially, and still
    // produce the reference matrix.
    FaultInjector::instance().armAt(FaultSite::PoolJob, {2});
    const ExperimentMatrix faulted = run(4);
    FaultInjector::instance().reset();
    EXPECT_TRUE(matricesIdentical(reference, faulted));
}

} // anonymous namespace
} // namespace cbws
