/**
 * @file
 * Unit tests for the multi-context CBWS extension: interleaved loops
 * keep independent histories instead of clearing each other.
 */

#include <gtest/gtest.h>

#include "core/multi_context.hh"
#include "test_util.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

void
runBlock(Prefetcher &pf, MockSink &sink, BlockId id, LineAddr line)
{
    pf.blockBegin(id, sink);
    PrefetchContext ctx = memCtx(0x400, lineBase(line));
    pf.observeCommit(ctx, sink);
    pf.blockEnd(id, sink);
}

TEST(CbwsMultiContext, SingleContextBaselineFailsOnInterleaving)
{
    // Demonstrate the limitation first: the paper's single-context
    // unit gets nothing from two strictly alternating loops.
    CbwsPrefetcher single;
    MockSink sink;
    for (unsigned b = 0; b < 40; ++b) {
        runBlock(single, sink, 1, 10000 + b * 4ull);
        runBlock(single, sink, 2, 900000 + b * 8ull);
    }
    EXPECT_EQ(single.schemeStats().tableHits, 0u);
    EXPECT_TRUE(sink.issued.empty());
}

TEST(CbwsMultiContext, PredictsBothInterleavedLoops)
{
    CbwsMultiContextPrefetcher pf;
    MockSink sink;
    for (unsigned b = 0; b < 40; ++b) {
        runBlock(pf, sink, 1, 10000 + b * 4ull);
        runBlock(pf, sink, 2, 900000 + b * 8ull);
    }
    EXPECT_EQ(pf.activeContexts(), 2u);
    EXPECT_EQ(pf.evictions(), 0u);
    EXPECT_GT(pf.aggregateStats().tableHits, 0u);
    // Both streams predicted one block ahead.
    EXPECT_TRUE(sink.wasIssued(10000 + 40ull * 4));
    EXPECT_TRUE(sink.wasIssued(900000 + 40ull * 8));
}

TEST(CbwsMultiContext, LruEvictionOnCapacity)
{
    CbwsMultiContextParams params;
    params.numContexts = 2;
    CbwsMultiContextPrefetcher pf(params);
    MockSink sink;
    runBlock(pf, sink, 1, 1000);
    runBlock(pf, sink, 2, 2000);
    runBlock(pf, sink, 3, 3000); // evicts context 1 (LRU)
    EXPECT_EQ(pf.activeContexts(), 2u);
    EXPECT_EQ(pf.evictions(), 1u);
    runBlock(pf, sink, 2, 2008); // still resident: no new eviction
    EXPECT_EQ(pf.evictions(), 1u);
}

TEST(CbwsMultiContext, CommitsOutsideBlocksIgnored)
{
    CbwsMultiContextPrefetcher pf;
    MockSink sink;
    pf.observeCommit(memCtx(0x400, 0x1000), sink); // no active block
    runBlock(pf, sink, 1, 100);
    pf.observeCommit(memCtx(0x400, 0x2000), sink); // between blocks
    EXPECT_EQ(pf.aggregateStats().accessesTracked, 1u);
}

TEST(CbwsMultiContext, StorageScalesWithContexts)
{
    CbwsMultiContextParams small, big;
    small.numContexts = 2;
    big.numContexts = 8;
    EXPECT_EQ(CbwsMultiContextPrefetcher(big).storageBits(),
              4 * CbwsMultiContextPrefetcher(small).storageBits());
    // 4 contexts stay cheaper than the SMS baseline (~41.5 Kbit).
    CbwsMultiContextPrefetcher def;
    EXPECT_LT(def.storageBits(), 41536u);
}

TEST(CbwsMultiContext, SingleLoopMatchesSingleContextBehaviour)
{
    // With only one block id the extension must behave like the
    // paper's unit.
    CbwsMultiContextPrefetcher multi;
    CbwsPrefetcher single;
    MockSink multi_sink, single_sink;
    for (unsigned b = 0; b < 30; ++b) {
        runBlock(multi, multi_sink, 1, 5000 + b * 4ull);
        runBlock(single, single_sink, 1, 5000 + b * 4ull);
    }
    EXPECT_EQ(multi_sink.issued.size(), single_sink.issued.size());
    EXPECT_EQ(multi.aggregateStats().tableHits,
              single.schemeStats().tableHits);
}

} // anonymous namespace
} // namespace cbws
