/**
 * @file
 * Adversarial-input hardening of the JSON reader: since the serving
 * layer feeds it bytes straight off a socket, deeply nested, truncated
 * and overlong-token documents must come back as a clean Errc::Corrupt
 * — never deep recursion, unbounded allocation, or a crash.
 */

#include <gtest/gtest.h>

#include <string>

#include "base/jsonparse.hh"
#include "serve/protocol.hh"

namespace cbws
{
namespace
{

TEST(JsonLimits, DeepNestingRejectedNotRecursed)
{
    // A million open brackets in a megabyte: without the depth cap
    // this is a stack overflow, with it a clean parse error.
    JsonLimits limits;
    limits.maxDepth = 64;
    const std::string bomb(1u << 20, '[');
    Result<JsonValue> r = parseJson(bomb, limits);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Errc::Corrupt);
    EXPECT_NE(r.error().message.find("depth"), std::string::npos);
}

TEST(JsonLimits, DeepObjectNestingAlsoCapped)
{
    JsonLimits limits;
    limits.maxDepth = 8;
    std::string doc;
    for (int i = 0; i < 16; ++i)
        doc += "{\"a\":";
    doc += "1";
    for (int i = 0; i < 16; ++i)
        doc += "}";
    Result<JsonValue> r = parseJson(doc, limits);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Errc::Corrupt);
}

TEST(JsonLimits, NestingAtTheLimitStillParses)
{
    JsonLimits limits;
    limits.maxDepth = 8;
    std::string doc;
    for (int i = 0; i < 8; ++i)
        doc += "[";
    doc += "1";
    for (int i = 0; i < 8; ++i)
        doc += "]";
    EXPECT_TRUE(parseJson(doc, limits).ok());
}

TEST(JsonLimits, OverlongStringRejected)
{
    JsonLimits limits;
    limits.maxStringBytes = 16;
    const std::string doc =
        "\"" + std::string(64, 'x') + "\"";
    Result<JsonValue> r = parseJson(doc, limits);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Errc::Corrupt);
    EXPECT_NE(r.error().message.find("string"), std::string::npos);
    // At the limit is fine.
    EXPECT_TRUE(
        parseJson("\"" + std::string(16, 'x') + "\"", limits).ok());
}

TEST(JsonLimits, OverlongNumberTokenRejected)
{
    JsonLimits limits;
    limits.maxNumberChars = 8;
    Result<JsonValue> r = parseJson(std::string(32, '1'), limits);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Errc::Corrupt);
    EXPECT_NE(r.error().message.find("number"), std::string::npos);
    EXPECT_TRUE(parseJson("12345678", limits).ok());
}

TEST(JsonLimits, OversizedDocumentRejectedUpFront)
{
    JsonLimits limits;
    limits.maxDocumentBytes = 32;
    const std::string doc =
        "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]";
    ASSERT_GT(doc.size(), 32u);
    Result<JsonValue> r = parseJson(doc, limits);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Errc::Corrupt);
    // 0 means unlimited (the default for trusted self-written files).
    limits.maxDocumentBytes = 0;
    EXPECT_TRUE(parseJson(doc, limits).ok());
}

TEST(JsonLimits, TruncatedDocumentsAreCleanErrors)
{
    const JsonLimits limits = serve::protocolJsonLimits();
    for (const char *doc :
         {"{\"op\":\"subm", "{\"op\":", "{", "[1,2,", "\"unterminated",
          "{\"a\":1,", "tru", "-"}) {
        Result<JsonValue> r = parseJson(doc, limits);
        EXPECT_FALSE(r.ok()) << doc;
        EXPECT_EQ(r.error().code, Errc::Corrupt) << doc;
    }
}

TEST(JsonLimits, ProtocolLimitsAcceptRealRequests)
{
    // The tightened socket-facing caps must not reject legitimate
    // protocol traffic.
    const JsonLimits limits = serve::protocolJsonLimits();
    const char *submit =
        "{\"op\":\"submit\",\"job\":{\"workloads\":[\"nw\"],"
        "\"schemes\":[\"CBWS\"],\"insts\":120000,\"seed\":42}}";
    EXPECT_TRUE(parseJson(submit, limits).ok());
    EXPECT_TRUE(parseJson("{\"op\":\"status\"}", limits).ok());
}

TEST(JsonLimits, DefaultsStillReadProjectFormats)
{
    // The default (trusted-file) limits must stay permissive enough
    // for checkpoint/snapshot lines with many nested arrays.
    std::string doc = "{\"cells\":[";
    for (int i = 0; i < 100; ++i) {
        if (i)
            doc += ",";
        doc += "{\"v\":[1,2,3],\"s\":\"" + std::string(256, 'y') +
               "\"}";
    }
    doc += "]}";
    EXPECT_TRUE(parseJson(doc).ok());
}

} // namespace
} // namespace cbws
