/**
 * @file
 * Architectural invisibility of the replay-speed optimizations.
 *
 * The SoA batch decode and the idle skip-ahead (base/tuning.hh) are
 * pure host-time optimizations: flipping either toggle must never
 * change a simulated statistic. These tests run the same cells with
 * every toggle combination — serially, under the parallel runner at
 * several job counts, and on the 4-core lockstep driver — and compare
 * the results bit for bit.
 *
 * The skip-ahead soundness property is tested directly against the
 * hierarchy: nextEventCycle() must never name a cycle beyond the one
 * where a pending MSHR fill (whose timing embeds the DRAM backend,
 * including DDR refresh adjustments) unblocks a stalled requester.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "base/tuning.hh"
#include "mem/hierarchy.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

constexpr Cycle NoEvent = ~Cycle(0);

/** Restore the process-wide toggles however a test exits. */
struct ToggleGuard
{
    Tuning saved = Tuning::get();
    ~ToggleGuard() { Tuning::get() = saved; }
};

void
setToggles(bool batch_decode, bool skip_ahead)
{
    Tuning::get().batchDecode = batch_decode;
    Tuning::get().skipAhead = skip_ahead;
}

/** Bitwise equality of two cells (POD stats + identity strings). */
::testing::AssertionResult
cellsIdentical(const SimResult &a, const SimResult &b)
{
    if (a.workload != b.workload)
        return ::testing::AssertionFailure()
               << "workload: " << a.workload << " vs " << b.workload;
    if (a.prefetcher != b.prefetcher)
        return ::testing::AssertionFailure()
               << "prefetcher: " << a.prefetcher << " vs "
               << b.prefetcher;
    if (a.prefetcherStorageBits != b.prefetcherStorageBits)
        return ::testing::AssertionFailure() << "storage bits differ";
    if (std::memcmp(&a.core, &b.core, sizeof(a.core)) != 0)
        return ::testing::AssertionFailure()
               << a.workload << "/" << a.prefetcher
               << ": CoreStats differ";
    if (a.mem != b.mem)
        return ::testing::AssertionFailure()
               << a.workload << "/" << a.prefetcher
               << ": HierarchyStats differ";
    if (a.perCore.size() != b.perCore.size())
        return ::testing::AssertionFailure() << "perCore size differs";
    for (std::size_t c = 0; c < a.perCore.size(); ++c) {
        if (std::memcmp(&a.perCore[c].core, &b.perCore[c].core,
                        sizeof(a.perCore[c].core)) != 0 ||
            std::memcmp(&a.perCore[c].mem, &b.perCore[c].mem,
                        sizeof(a.perCore[c].mem)) != 0) {
            return ::testing::AssertionFailure()
                   << "per-core slice " << c << " differs";
        }
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
matricesIdentical(const ExperimentMatrix &a, const ExperimentMatrix &b)
{
    if (a.rows.size() != b.rows.size())
        return ::testing::AssertionFailure() << "row counts differ";
    for (std::size_t r = 0; r < a.rows.size(); ++r) {
        if (a.rows[r].byPrefetcher.size() !=
            b.rows[r].byPrefetcher.size())
            return ::testing::AssertionFailure() << "cell counts differ";
        for (std::size_t k = 0; k < a.rows[r].byPrefetcher.size();
             ++k) {
            auto cell = cellsIdentical(a.rows[r].byPrefetcher[k],
                                       b.rows[r].byPrefetcher[k]);
            if (!cell)
                return cell;
        }
    }
    return ::testing::AssertionSuccess();
}

std::vector<WorkloadPtr>
sampleWorkloads()
{
    // One block-structured and one data-dependent kernel keep the
    // matrix cheap while exercising both the loop-heavy and the
    // pointer-chasing replay paths.
    std::vector<WorkloadPtr> ws;
    for (const char *name : {"sgemm-medium", "histo-large"}) {
        auto w = findWorkload(name);
        EXPECT_NE(w, nullptr) << name;
        if (w)
            ws.push_back(std::move(w));
    }
    return ws;
}

ExperimentMatrix
runSmallMatrix(unsigned jobs)
{
    const auto ws = sampleWorkloads();
    MatrixOptions opts;
    opts.jobs = jobs;
    return runMatrix(ws, allPrefetcherKinds(), SystemConfig(), 10000,
                     42, opts);
}

TEST(ReplayOpt, TogglesBitIdenticalAcrossJobCounts)
{
    ToggleGuard guard;
    setToggles(true, true);
    const ExperimentMatrix ref = runSmallMatrix(1);

    const struct
    {
        bool batch;
        bool skip;
    } combos[] = {{false, true}, {true, false}, {false, false}};
    for (const auto &combo : combos) {
        setToggles(combo.batch, combo.skip);
        for (const unsigned jobs : {1u, 2u, 8u}) {
            SCOPED_TRACE(::testing::Message()
                         << "batchDecode=" << combo.batch
                         << " skipAhead=" << combo.skip
                         << " jobs=" << jobs);
            EXPECT_TRUE(matricesIdentical(ref, runSmallMatrix(jobs)));
        }
    }
}

TEST(ReplayOpt, TogglesBitIdenticalOnFourCoreLockstepDriver)
{
    ToggleGuard guard;
    auto wl = findWorkload("sgemm-medium");
    ASSERT_NE(wl, nullptr);
    WorkloadParams params;
    params.maxInstructions = 10000;
    params.seed = 42;
    Trace trace;
    trace.reserve(10512);
    wl->generate(trace, params);

    SystemConfig config;
    config.mem.numCores = 4;
    const std::vector<const Trace *> traces(4, &trace);
    const std::vector<std::string> names(4, "sgemm-medium");

    auto run = [&] {
        return simulateMulti(traces, names, config, 10000, SimProbes(),
                             2500);
    };
    setToggles(true, true);
    const SimResult ref = run();
    ASSERT_EQ(ref.perCore.size(), 4u);

    const struct
    {
        bool batch;
        bool skip;
    } combos[] = {{false, true}, {true, false}, {false, false}};
    for (const auto &combo : combos) {
        setToggles(combo.batch, combo.skip);
        SCOPED_TRACE(::testing::Message()
                     << "batchDecode=" << combo.batch
                     << " skipAhead=" << combo.skip);
        EXPECT_TRUE(cellsIdentical(ref, run()));
    }
}

/**
 * Skip-ahead soundness against a pending MSHR fill: with every L1D
 * MSHR occupied at cycle 0, nextEventCycle() names the first cycle at
 * which any fill drains. A stalled load must keep failing on every
 * cycle before it (so fast-forwarding to it skips no state change)
 * and must eventually succeed at or after it (so the skip never
 * overshoots the wake-up).
 */
void
runSkipAheadProperty(const HierarchyParams &params)
{
    Hierarchy mem(params);
    const unsigned mshrs = mem.params().l1d.mshrs;
    for (unsigned i = 0; i < mshrs; ++i)
        ASSERT_TRUE(mem.load((i + 1) * 0x10000, 0).ok);
    ASSERT_FALSE(mem.load(0x900000, 0).ok) << "MSHRs not saturated";

    const Cycle next = mem.nextEventCycle();
    ASSERT_NE(next, NoEvent);
    ASSERT_GT(next, Cycle(0));

    for (Cycle c = 1; c < next; ++c) {
        mem.tick(c);
        ASSERT_FALSE(mem.load(0x900000, c).ok)
            << "state changed at cycle " << c
            << ", before nextEventCycle()=" << next
            << ": skip-ahead would have jumped past it";
    }

    // At nextEventCycle() a fill drains (an L2-level fill may drain
    // first without freeing the L1 MSHR), so the retry succeeds at
    // some cycle >= next, within the full miss latency.
    Cycle success = NoEvent;
    const Cycle bound = next + 2 * mem.params().dramLatency + 1000;
    for (Cycle c = next; c < bound; ++c) {
        mem.tick(c);
        if (mem.load(0x900000, c).ok) {
            success = c;
            break;
        }
    }
    ASSERT_NE(success, NoEvent) << "stalled load never unblocked";
    EXPECT_GE(success, next);
}

TEST(ReplayOpt, SkipAheadNeverJumpsPastPendingFillFixedDram)
{
    runSkipAheadProperty(HierarchyParams());
}

TEST(ReplayOpt, SkipAheadNeverJumpsPastPendingFillDdrDram)
{
    // The DDR backend folds bank/row timing and refresh adjustments
    // into each fill's readyAt; the soundness property must hold on
    // that path too.
    HierarchyParams params;
    params.dramBackend = "ddr";
    runSkipAheadProperty(params);
}

/**
 * The retry fast path must be invisible next to the slow path: a
 * merge into an in-flight fill under a full MSHR file produces the
 * same outcome and counters as the same merge when the file has room.
 */
TEST(ReplayOpt, MshrFullMergeMatchesUncongestedMerge)
{
    Hierarchy congested{HierarchyParams()};
    Hierarchy roomy{HierarchyParams()};
    const unsigned mshrs = congested.params().l1d.mshrs;

    // Fill every MSHR in `congested`; leave one free in `roomy`.
    for (unsigned i = 0; i < mshrs; ++i)
        ASSERT_TRUE(congested.load((i + 1) * 0x10000, 0).ok);
    for (unsigned i = 0; i < mshrs - 1; ++i)
        ASSERT_TRUE(roomy.load((i + 1) * 0x10000, 0).ok);

    // Merge into the first line's in-flight fill on both. The seeding
    // miss counts differ by construction, so compare the merge's own
    // contribution to the counters, not the totals.
    const auto misses_a = congested.stats().l1dMisses;
    const auto misses_b = roomy.stats().l1dMisses;
    const auto a = congested.load(0x10020, 3);
    const auto b = roomy.load(0x10020, 3);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.l1Hit, b.l1Hit);
    EXPECT_EQ(a.readyAt, b.readyAt);
    EXPECT_EQ(congested.stats().l1dMisses - misses_a,
              roomy.stats().l1dMisses - misses_b);
    EXPECT_EQ(congested.stats().mshrStalls, 0u);
}

} // anonymous namespace
} // namespace cbws
