/**
 * @file
 * Unit tests for the trace substrate: record constructors, the trace
 * container and the binary on-disk format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace.hh"

namespace cbws
{
namespace
{

TEST(TraceRecord, Factories)
{
    const TraceRecord a = TraceRecord::alu(0x400, 3, 1, 2);
    EXPECT_EQ(a.cls, InstClass::IntAlu);
    EXPECT_EQ(a.pc, 0x400u);
    EXPECT_EQ(a.dest, 3);
    EXPECT_EQ(a.src1, 1);
    EXPECT_EQ(a.src2, 2);

    const TraceRecord l = TraceRecord::load(0x404, 0x10040, 5, 1, 4);
    EXPECT_EQ(l.cls, InstClass::Load);
    EXPECT_EQ(l.effAddr, 0x10040u);
    EXPECT_EQ(l.size, 4);
    EXPECT_EQ(l.line(), lineOf(0x10040));
    EXPECT_TRUE(isMemory(l.cls));

    const TraceRecord s = TraceRecord::store(0x408, 0x10080, 5, 2);
    EXPECT_EQ(s.cls, InstClass::Store);
    EXPECT_EQ(s.src1, 5);
    EXPECT_EQ(s.src2, 2);
    EXPECT_TRUE(isMemory(s.cls));

    const TraceRecord b = TraceRecord::branch(0x40c, true, 0x400, 6);
    EXPECT_EQ(b.cls, InstClass::Branch);
    EXPECT_TRUE(b.taken);
    EXPECT_EQ(b.effAddr, 0x400u);
    EXPECT_FALSE(isMemory(b.cls));

    const TraceRecord bb = TraceRecord::blockBegin(0x410, 7);
    EXPECT_EQ(bb.cls, InstClass::BlockBegin);
    EXPECT_EQ(bb.blockId, 7);
    EXPECT_TRUE(isBlockMarker(bb.cls));
    EXPECT_TRUE(isBlockMarker(InstClass::BlockEnd));
    EXPECT_FALSE(isBlockMarker(InstClass::Load));
}

TEST(TraceRecord, IsCompact)
{
    // Multi-million-record traces rely on the record staying small.
    EXPECT_LE(sizeof(TraceRecord), 32u);
}

TEST(Trace, AppendAndIterate)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    t.append(TraceRecord::alu(0x400, 1));
    t.append(TraceRecord::load(0x404, 0x1000, 2, 1));
    t.append(TraceRecord::blockBegin(0x408, 0));
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t[1].cls, InstClass::Load);
    std::size_t n = 0;
    for (const auto &rec : t) {
        (void)rec;
        ++n;
    }
    EXPECT_EQ(n, 3u);
}

TEST(Trace, CountClass)
{
    Trace t;
    for (int i = 0; i < 5; ++i)
        t.append(TraceRecord::load(0x400, 0x1000 + i * 64, 1));
    for (int i = 0; i < 3; ++i)
        t.append(TraceRecord::alu(0x404, 1));
    EXPECT_EQ(t.countClass(InstClass::Load), 5u);
    EXPECT_EQ(t.countClass(InstClass::IntAlu), 3u);
    EXPECT_EQ(t.countClass(InstClass::Store), 0u);
}

TEST(TraceFile, RoundTrip)
{
    Trace t;
    for (int i = 0; i < 100; ++i) {
        t.append(TraceRecord::load(0x400 + i * 4, 0x10000 + i * 64,
                                   static_cast<RegIndex>(i % 32), 1));
        t.append(TraceRecord::branch(0x800 + i * 4, i % 2 == 0,
                                     0x400, 2));
    }
    const std::string path = testing::TempDir() + "cbws_trace_rt.bin";
    ASSERT_TRUE(t.saveTo(path));

    Trace loaded;
    ASSERT_TRUE(loaded.loadFrom(path));
    ASSERT_EQ(loaded.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, t[i].pc);
        EXPECT_EQ(loaded[i].effAddr, t[i].effAddr);
        EXPECT_EQ(loaded[i].cls, t[i].cls);
        EXPECT_EQ(loaded[i].taken, t[i].taken);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceRoundTrip)
{
    Trace t;
    const std::string path = testing::TempDir() + "cbws_trace_mt.bin";
    ASSERT_TRUE(t.saveTo(path));
    Trace loaded;
    loaded.append(TraceRecord::alu(1, 1)); // should be cleared
    ASSERT_TRUE(loaded.loadFrom(path));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(TraceFile, CompressedRoundTrip)
{
    Trace t;
    Addr addr = 0x1000000;
    for (int i = 0; i < 500; ++i) {
        t.append(TraceRecord::blockBegin(0x400000, 5));
        t.append(TraceRecord::load(0x400004, addr, 3, 1, 4));
        addr += 72;
        t.append(TraceRecord::store(0x400008, addr + 9999, 3, 1));
        t.append(TraceRecord::branch(0x40000c, i % 3 != 0,
                                     0x400000, 2));
        t.append(TraceRecord::blockEnd(0x400010, 5));
    }
    const std::string path =
        testing::TempDir() + "cbws_trace_c.bin";
    ASSERT_TRUE(t.saveCompressed(path));

    Trace loaded;
    ASSERT_TRUE(loaded.loadFrom(path));
    ASSERT_EQ(loaded.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, t[i].pc) << i;
        EXPECT_EQ(loaded[i].effAddr, t[i].effAddr) << i;
        EXPECT_EQ(loaded[i].cls, t[i].cls) << i;
        EXPECT_EQ(loaded[i].taken, t[i].taken) << i;
        EXPECT_EQ(loaded[i].src1, t[i].src1) << i;
        EXPECT_EQ(loaded[i].dest, t[i].dest) << i;
        EXPECT_EQ(loaded[i].size, t[i].size) << i;
        EXPECT_EQ(loaded[i].blockId, t[i].blockId) << i;
    }
    std::remove(path.c_str());
}

TEST(TraceFile, CompressedIsSmaller)
{
    Trace t;
    for (int i = 0; i < 2000; ++i)
        t.append(TraceRecord::load(0x400000 + (i % 4) * 4,
                                   0x1000000 + i * 64ull, 3, 1));
    const std::string raw = testing::TempDir() + "cbws_raw.bin";
    const std::string comp = testing::TempDir() + "cbws_comp.bin";
    ASSERT_TRUE(t.saveTo(raw));
    ASSERT_TRUE(t.saveCompressed(comp));
    auto size_of = [](const std::string &p) {
        std::FILE *f = std::fopen(p.c_str(), "rb");
        std::fseek(f, 0, SEEK_END);
        const long n = std::ftell(f);
        std::fclose(f);
        return n;
    };
    EXPECT_LT(size_of(comp) * 2, size_of(raw));
    std::remove(raw.c_str());
    std::remove(comp.c_str());
}

TEST(TraceFile, MissingFileFails)
{
    Trace t;
    EXPECT_FALSE(t.loadFrom("/nonexistent/dir/file.bin"));
}

TEST(TraceFile, CorruptMagicRejected)
{
    const std::string path = testing::TempDir() + "cbws_trace_bad.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("JUNKJUNKJUNKJUNK", 1, 16, f);
    std::fclose(f);
    Trace t;
    EXPECT_FALSE(t.loadFrom(path));
    EXPECT_TRUE(t.empty());
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace cbws
