/**
 * @file
 * Determinism of the parallel experiment runner: runMatrix must be
 * bit-identical for any job count, across every prefetcher kind, and
 * the O(1) result() lookup must agree with the row layout.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/experiment.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

std::vector<WorkloadPtr>
sampleWorkloads()
{
    // One block-structured, one data-dependent, one low-MPKI kernel
    // keeps the run cheap while exercising very different simulator
    // paths.
    std::vector<WorkloadPtr> ws;
    for (const char *name :
         {"sgemm-medium", "histo-large", "fft-simlarge"}) {
        auto w = findWorkload(name);
        EXPECT_NE(w, nullptr) << name;
        if (w)
            ws.push_back(std::move(w));
    }
    return ws;
}

/** Bitwise equality of two cells (POD stats + identity strings). */
::testing::AssertionResult
cellsIdentical(const SimResult &a, const SimResult &b)
{
    if (a.workload != b.workload)
        return ::testing::AssertionFailure()
               << "workload: " << a.workload << " vs " << b.workload;
    if (a.prefetcher != b.prefetcher)
        return ::testing::AssertionFailure()
               << "prefetcher: " << a.prefetcher << " vs "
               << b.prefetcher;
    if (a.prefetcherStorageBits != b.prefetcherStorageBits)
        return ::testing::AssertionFailure() << "storage bits differ";
    if (std::memcmp(&a.core, &b.core, sizeof(a.core)) != 0)
        return ::testing::AssertionFailure()
               << a.workload << "/" << a.prefetcher
               << ": CoreStats differ";
    if (a.mem != b.mem)
        return ::testing::AssertionFailure()
               << a.workload << "/" << a.prefetcher
               << ": HierarchyStats differ";
    return ::testing::AssertionSuccess();
}

TEST(ParallelMatrix, FourJobsBitIdenticalToSerialAcrossAllKinds)
{
    const auto ws = sampleWorkloads();
    ASSERT_EQ(ws.size(), 3u);
    const auto kinds = allPrefetcherKinds();
    SystemConfig cfg;
    constexpr std::uint64_t insts = 12000;

    MatrixOptions serial;
    serial.jobs = 1;
    const auto m1 = runMatrix(ws, kinds, cfg, insts, 42, serial);

    MatrixOptions parallel;
    parallel.jobs = 4;
    const auto m4 = runMatrix(ws, kinds, cfg, insts, 42, parallel);

    ASSERT_EQ(m1.rows.size(), m4.rows.size());
    for (std::size_t r = 0; r < m1.rows.size(); ++r) {
        ASSERT_EQ(m1.rows[r].byPrefetcher.size(), kinds.size());
        ASSERT_EQ(m4.rows[r].byPrefetcher.size(), kinds.size());
        EXPECT_EQ(m1.rows[r].workload, m4.rows[r].workload);
        EXPECT_EQ(m1.rows[r].memoryIntensive,
                  m4.rows[r].memoryIntensive);
        for (std::size_t k = 0; k < kinds.size(); ++k)
            EXPECT_TRUE(cellsIdentical(m1.rows[r].byPrefetcher[k],
                                       m4.rows[r].byPrefetcher[k]));
    }
}

TEST(ParallelMatrix, MoreJobsThanCellsIsStillIdentical)
{
    std::vector<WorkloadPtr> ws;
    ws.push_back(findWorkload("stencil-default"));
    ASSERT_NE(ws[0], nullptr);
    const std::vector<PrefetcherKind> kinds = {PrefetcherKind::Cbws,
                                               PrefetcherKind::Sms};
    SystemConfig cfg;

    MatrixOptions serial;
    serial.jobs = 1;
    const auto m1 = runMatrix(ws, kinds, cfg, 8000, 42, serial);

    MatrixOptions wide;
    wide.jobs = 16; // far more workers than the 2 cells
    const auto mw = runMatrix(ws, kinds, cfg, 8000, 42, wide);

    for (std::size_t k = 0; k < kinds.size(); ++k)
        EXPECT_TRUE(cellsIdentical(m1.rows[0].byPrefetcher[k],
                                   mw.rows[0].byPrefetcher[k]));
}

TEST(ParallelMatrix, ResultLookupAgreesWithRowLayout)
{
    std::vector<WorkloadPtr> ws;
    ws.push_back(findWorkload("fft-simlarge"));
    ASSERT_NE(ws[0], nullptr);
    const auto schemes = allSchemeNames();
    SystemConfig cfg;
    const auto m = runMatrix(ws, schemes, cfg, 8000);

    ASSERT_EQ(m.schemes, schemes);
    for (std::size_t k = 0; k < schemes.size(); ++k)
        EXPECT_EQ(&m.result(0, schemes[k]),
                  &m.rows[0].byPrefetcher[k]);
    // The deprecated enum overload resolves to the same columns.
    EXPECT_EQ(&m.result(0, PrefetcherKind::Sms),
              &m.result(0, std::string("SMS")));
}

TEST(ParallelMatrix, ResultLookupIsCaseInsensitive)
{
    // Hand-assembled matrices (as some tests build) resolve by
    // scanning `schemes` with the registry's canon rule.
    ExperimentMatrix m;
    m.schemes = {"SMS", "CBWS"};
    m.rows.resize(1);
    m.rows[0].byPrefetcher.resize(2);
    m.rows[0].byPrefetcher[1].prefetcherStorageBits = 77;
    EXPECT_EQ(m.result(0, std::string("cbws")).prefetcherStorageBits,
              77u);
    EXPECT_EQ(m.column("sms"), 0u);
}

} // anonymous namespace
} // namespace cbws
