/**
 * @file
 * The DBMS/server workload family: registry membership, accessor
 * ordering, byte-exact determinism, trace-cache round-trips, the
 * fan-out/out-degree knobs, and the non-degeneracy claim — CBWS
 * coverage genuinely collapses on at least one of these kernels
 * relative to every loop-nest benchmark.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "sim/config.hh"
#include "sim/simulator.hh"
#include "trace/tracecache.hh"
#include "workloads/kernels/kernels.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

const char *const DbmsNames[] = {
    "hash-join",     "btree-descent", "binary-search",
    "pointer-chase", "hashmap-storm", "column-materialize",
};

bool
tracesEqual(const Trace &a, const Trace &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.records().data(), b.records().data(),
                        a.size() * sizeof(TraceRecord)) == 0);
}

Trace
generate(const Workload &w, std::uint64_t insts,
         std::uint64_t seed = 42)
{
    WorkloadParams params;
    params.maxInstructions = insts;
    params.seed = seed;
    Trace t;
    w.generate(t, params);
    return t;
}

TEST(Dbms, AllSixRegisteredWithSuiteAndMiFlag)
{
    for (const char *name : DbmsNames) {
        auto w = findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        EXPECT_EQ(w->suite(), "DBMS") << name;
        EXPECT_TRUE(w->memoryIntensive()) << name;
    }
}

TEST(Dbms, FamilyAccessorOrderMatchesCatalog)
{
    const auto family = dbmsWorkloads();
    ASSERT_EQ(family.size(), 6u);
    for (std::size_t i = 0; i < family.size(); ++i)
        EXPECT_EQ(family[i]->name(), DbmsNames[i]) << i;

    // allWorkloads() appends the family after the paper's 30, so
    // the figure benches and the tournament pick it up unchanged.
    const auto all = allWorkloads();
    ASSERT_EQ(all.size(), 36u);
    for (std::size_t i = 0; i < family.size(); ++i)
        EXPECT_EQ(all[30 + i]->name(), DbmsNames[i]) << i;
}

TEST(Dbms, TracesAreByteDeterministic)
{
    for (const char *name : DbmsNames) {
        auto w = findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        const Trace a = generate(*w, 8000);
        const Trace b = generate(*w, 8000);
        EXPECT_TRUE(tracesEqual(a, b)) << name;
    }
}

TEST(Dbms, TraceCacheRoundTripIsBitExact)
{
    char tmpl[] = "/tmp/cbws-dbms-cache-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;

    TraceCache cache(dir);
    for (const char *name : DbmsNames) {
        auto w = findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        const Trace original = generate(*w, 6000);
        const TraceCache::Key key{name, 6000, 42};
        ASSERT_TRUE(cache.store(key, original).ok()) << name;
        Trace restored;
        ASSERT_TRUE(cache.load(key, restored)) << name;
        EXPECT_TRUE(tracesEqual(original, restored)) << name;
    }

    const std::string cmd = "rm -rf '" + dir + "'";
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "cleanup failed: " << cmd;
}

TEST(Dbms, StructureKnobsChangeTheTrace)
{
    // The B-tree fan-out and pointer-chase out-degree are real
    // parameters: different values must change the address stream,
    // while repeated use of the same value stays deterministic.
    const Trace wide = generate(*kernels::makeBtreeDescent(16), 8000);
    const Trace narrow = generate(*kernels::makeBtreeDescent(4), 8000);
    EXPECT_FALSE(tracesEqual(wide, narrow));
    EXPECT_TRUE(tracesEqual(
        wide, generate(*kernels::makeBtreeDescent(16), 8000)));

    const Trace deg4 = generate(*kernels::makePointerChase(4), 8000);
    const Trace deg1 = generate(*kernels::makePointerChase(1), 8000);
    EXPECT_FALSE(tracesEqual(deg4, deg1));
    EXPECT_TRUE(tracesEqual(
        deg4, generate(*kernels::makePointerChase(4), 8000)));
}

TEST(Dbms, FindWorkloadCheckedReportsValidNames)
{
    auto ok = findWorkloadChecked("hash-join");
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value()->name(), "hash-join");

    auto err = findWorkloadChecked("not-a-kernel");
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.error().code, Errc::InvalidArgument);
    const std::string msg = err.error().str();
    EXPECT_NE(msg.find("unknown workload 'not-a-kernel'"),
              std::string::npos)
        << msg;
    // The message must list the valid names so a typo in a
    // --core-workloads list is a one-round-trip fix.
    EXPECT_NE(msg.find("hash-join"), std::string::npos) << msg;
    EXPECT_NE(msg.find("429.mcf-ref"), std::string::npos) << msg;
}

/** CBWS timely coverage of one workload (lifecycle definition). */
double
cbwsCoverage(const Workload &w, std::uint64_t insts)
{
    SystemConfig cfg;
    cfg.scheme = "CBWS";
    WorkloadParams params;
    params.maxInstructions = insts;
    const SimResult r = simulateWorkload(w, cfg, params);
    const PrefetchLifecycle life = r.mem.pfLifeTotal();
    const std::uint64_t base =
        life.demandHitTimely + r.mem.llcDemandMisses;
    return base ? static_cast<double>(life.demandHitTimely) /
                      static_cast<double>(base)
                : 0.0;
}

TEST(Dbms, CbwsCoverageCollapsesRelativeToLoopNests)
{
    // Non-degeneracy: the family is only useful if it actually
    // defeats loop-aware prefetching. At least one DBMS kernel must
    // see strictly lower CBWS coverage than every loop-nest kernel.
    //
    // "Loop-nest" means the catalog kernels whose inner loops walk
    // arrays with static structure — the codes CBWS was built for.
    // The catalog's own pointer/graph/scatter codes (429.mcf-ref,
    // bfs-1m, histo-large, canneal, freqmine, ...) already sit near
    // zero coverage and are deliberately not the bar here.
    constexpr std::uint64_t insts = 12000;
    const char *const loop_nests[] = {
        "stencil-default",  "sgemm-medium",
        "mri-q-large",      "433.milc-su3imp",
        "nw",               "lbm-long",
        "radix-simlarge",   "water-spatial-native",
        "srad-v1",          "mxm-linpack",
        "fft-simlarge",     "sad-base-large",
        "backprop",         "streamcluster-simlarge",
        "lu-ncb-simlarge",  "462.libquantum-ref",
    };

    double dbms_min = 1.0;
    std::string dbms_min_name;
    for (const auto &w : dbmsWorkloads()) {
        const double cov = cbwsCoverage(*w, insts);
        if (cov < dbms_min) {
            dbms_min = cov;
            dbms_min_name = w->name();
        }
    }

    double loop_min = 1.0;
    std::string loop_min_name;
    for (const char *name : loop_nests) {
        auto w = findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        const double cov = cbwsCoverage(*w, insts);
        if (cov < loop_min) {
            loop_min = cov;
            loop_min_name = name;
        }
    }

    EXPECT_LT(dbms_min, loop_min)
        << "weakest DBMS kernel " << dbms_min_name << " (coverage "
        << dbms_min << ") does not undercut weakest loop nest "
        << loop_min_name << " (coverage " << loop_min << ")";
}

} // anonymous namespace
} // namespace cbws
