/**
 * @file
 * Additional parameterised sweeps: cache geometries, branch-predictor
 * sizings, hierarchy latency compositions and SMS/GHB configurations
 * — broad invariants over the configuration space.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "cpu/branch_pred.hh"
#include "mem/hierarchy.hh"
#include "prefetch/ghb.hh"
#include "prefetch/sms.hh"
#include "test_util.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

// ---- Cache geometry sweep ----

struct CacheGeom
{
    unsigned assoc;
    std::uint64_t sets;
    ReplPolicy repl;
};

class CacheGeometryTest : public testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheGeometryTest, ContentsMatchReferenceSet)
{
    const auto geom = GetParam();
    CacheParams params;
    params.assoc = geom.assoc;
    params.sizeBytes = geom.sets * geom.assoc * LineBytes;
    params.repl = geom.repl;
    Cache cache(params);

    // Insert a random line stream; at every step, a line reported
    // present must have been inserted and not yet reported evicted.
    Random rng(77);
    std::set<LineAddr> resident;
    for (int i = 0; i < 2000; ++i) {
        const LineAddr line = rng.below(4 * geom.sets * geom.assoc);
        if (cache.contains(line)) {
            EXPECT_TRUE(resident.count(line))
                << "cache invented line " << line;
        }
        const auto victim = cache.insert(line, i, false);
        resident.insert(line);
        if (victim.valid)
            resident.erase(victim.line);
        EXPECT_TRUE(cache.contains(line));
    }
    // Occupancy never exceeds capacity.
    EXPECT_LE(resident.size(), geom.sets * geom.assoc);
}

TEST_P(CacheGeometryTest, LruNeverEvictsMostRecent)
{
    const auto geom = GetParam();
    if (geom.repl != ReplPolicy::LRU)
        GTEST_SKIP() << "LRU-specific property";
    CacheParams params;
    params.assoc = geom.assoc;
    params.sizeBytes = geom.sets * geom.assoc * LineBytes;
    params.repl = geom.repl;
    Cache cache(params);
    Random rng(5);
    LineAddr last = 0;
    for (int i = 0; i < 1000; ++i) {
        const LineAddr line = rng.below(8 * geom.sets * geom.assoc);
        const auto victim = cache.insert(line, i, false);
        if (victim.valid && geom.assoc > 1) {
            EXPECT_NE(victim.line, last);
        }
        last = line;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    testing::Values(CacheGeom{1, 8, ReplPolicy::LRU},
                    CacheGeom{2, 4, ReplPolicy::LRU},
                    CacheGeom{4, 16, ReplPolicy::LRU},
                    CacheGeom{8, 64, ReplPolicy::LRU},
                    CacheGeom{2, 4, ReplPolicy::RandomRepl},
                    CacheGeom{4, 8, ReplPolicy::RandomRepl}),
    [](const testing::TestParamInfo<CacheGeom> &param_info) {
        return "a" + std::to_string(param_info.param.assoc) + "_s" +
               std::to_string(param_info.param.sets) +
               (param_info.param.repl == ReplPolicy::LRU ? "_lru"
                                                   : "_rand");
    });

// ---- Branch predictor sizing sweep ----

class BranchPredSizeTest : public testing::TestWithParam<unsigned>
{
};

TEST_P(BranchPredSizeTest, LoopBranchesConvergeAtAnySize)
{
    BranchPredParams params;
    params.globalEntries = GetParam();
    params.choiceEntries = GetParam();
    params.localCtrEntries = GetParam() / 2;
    params.localHistEntries = GetParam() / 4;
    params.btbEntries = GetParam();
    TournamentBP bp(params);
    unsigned late = 0;
    for (int i = 0; i < 600; ++i) {
        auto r = bp.predictAndTrain(0x400100, i % 100 != 99,
                                    0x400000);
        if (i >= 300 && r.dirMispredict)
            ++late;
    }
    // Late mispredicts only at the periodic exit (3 of 300).
    EXPECT_LE(late, 6u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BranchPredSizeTest,
                         testing::Values(64u, 256u, 1024u, 4096u));

// ---- Hierarchy latency composition sweep ----

struct LatencyConfig
{
    Cycle l1;
    Cycle l2;
    Cycle dram;
};

class HierarchyLatencyTest
    : public testing::TestWithParam<LatencyConfig>
{
};

TEST_P(HierarchyLatencyTest, ColdMissComposesExactly)
{
    const auto lat = GetParam();
    HierarchyParams params;
    params.l1d.latency = lat.l1;
    params.l2.latency = lat.l2;
    params.dramLatency = lat.dram;
    Hierarchy mem(params);
    auto out = mem.load(0x123400, 0);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.readyAt, lat.l1 + lat.l2 + lat.dram + lat.l1);
}

INSTANTIATE_TEST_SUITE_P(
    Latencies, HierarchyLatencyTest,
    testing::Values(LatencyConfig{1, 10, 100},
                    LatencyConfig{2, 30, 300},
                    LatencyConfig{4, 40, 200},
                    LatencyConfig{3, 12, 500}));

// ---- SMS region-size sweep ----

class SmsRegionTest : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SmsRegionTest, PatternReplayAtAnyRegionSize)
{
    SmsParams params;
    params.regionBytes = GetParam();
    params.agtEntries = 1;
    SmsPrefetcher pf(params);
    MockSink sink;
    const Addr r1 = 10 * GetParam(), r2 = 20 * GetParam(),
               probe = 77 * GetParam();
    // Pattern {0, last-line} in region r1; evict via region r2.
    pf.observeAccess(memCtx(0xAAA, r1), sink);
    pf.observeAccess(
        memCtx(0xAAB, r1 + GetParam() - LineBytes), sink);
    pf.observeAccess(memCtx(0xBBB, r2), sink);
    pf.observeAccess(memCtx(0xBBC, r2 + LineBytes), sink);
    sink.issued.clear();
    pf.observeAccess(memCtx(0xAAA, probe), sink);
    EXPECT_TRUE(
        sink.wasIssued(lineOf(probe + GetParam() - LineBytes)));
}

INSTANTIATE_TEST_SUITE_P(Regions, SmsRegionTest,
                         testing::Values(512u, 1024u, 2048u, 4096u));

// ---- GHB depth/degree sweep ----

struct GhbGeom
{
    unsigned history;
    unsigned degree;
};

class GhbGeomTest : public testing::TestWithParam<GhbGeom>
{
};

TEST_P(GhbGeomTest, ConstantStreamAlwaysPredicted)
{
    GhbParams params;
    params.historyLength = GetParam().history;
    params.degree = GetParam().degree;
    GhbPrefetcher pf(GhbPrefetcher::Mode::PcDC, params);
    MockSink sink;
    for (int i = 0; i < 24; ++i)
        pf.observeAccess(memCtx(0x400, i * 192ull), sink);
    EXPECT_FALSE(sink.issued.empty());
    // Every issue continues the stride-3 stream.
    for (LineAddr l : sink.issued)
        EXPECT_EQ(l % 3, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GhbGeomTest,
    testing::Values(GhbGeom{2, 1}, GhbGeom{3, 3}, GhbGeom{4, 2},
                    GhbGeom{6, 4}),
    [](const testing::TestParamInfo<GhbGeom> &param_info) {
        return "h" + std::to_string(param_info.param.history) + "_d" +
               std::to_string(param_info.param.degree);
    });

} // anonymous namespace
} // namespace cbws
