/**
 * @file
 * Unit tests for the two-level hierarchy: latency composition, MSHR
 * merge and back-pressure, the prefetch-into-L2 path and the Fig. 13
 * demand-access classification.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace cbws
{
namespace
{

HierarchyParams
defaultParams()
{
    return HierarchyParams();
}

TEST(Hierarchy, LatencyComposition)
{
    Hierarchy mem(defaultParams());
    const auto &p = mem.params();

    // Cold miss: L1 + L2 + DRAM + L1 fill.
    auto out = mem.load(0x10000, 0);
    ASSERT_TRUE(out.ok);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_EQ(out.cls, DemandClass::Missing);
    const Cycle miss_ready = p.l1d.latency + p.l2.latency +
                             p.dramLatency + p.l1d.latency;
    EXPECT_EQ(out.readyAt, miss_ready);

    // After the fill drains, the same line is an L1 hit.
    const Cycle later = out.readyAt + 1;
    out = mem.load(0x10000, later);
    EXPECT_TRUE(out.l1Hit);
    EXPECT_EQ(out.readyAt, later + p.l1d.latency);
    EXPECT_EQ(out.cls, DemandClass::None);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    HierarchyParams p;
    // One-set, one-way L1 so the second line evicts the first.
    p.l1d.sizeBytes = LineBytes;
    p.l1d.assoc = 1;
    Hierarchy mem(p);

    Cycle t = 0;
    t = mem.load(0, t).readyAt + 1;
    t = mem.load(64 * 1024, t).readyAt + 1; // evicts line 0 from L1
    auto out = mem.load(0, t);
    ASSERT_TRUE(out.ok);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_EQ(out.cls, DemandClass::CachedHit); // still in L2
    EXPECT_EQ(out.readyAt,
              t + p.l1d.latency + p.l2.latency + p.l1d.latency);
}

TEST(Hierarchy, MshrMergeSharesFill)
{
    Hierarchy mem(defaultParams());
    auto first = mem.load(0x20000, 0);
    // Another access to the same line merges into the in-flight fill
    // rather than producing a new L2 access.
    auto merged = mem.load(0x20010, 5);
    ASSERT_TRUE(merged.ok);
    EXPECT_EQ(merged.cls, DemandClass::None);
    EXPECT_LE(merged.readyAt, first.readyAt);
    EXPECT_EQ(mem.stats().llcDemandMisses, 1u);
    EXPECT_EQ(mem.stats().demandL2Accesses, 1u);
}

TEST(Hierarchy, L1MshrBackPressure)
{
    Hierarchy mem(defaultParams());
    const unsigned mshrs = mem.params().l1d.mshrs;
    for (unsigned i = 0; i < mshrs; ++i)
        EXPECT_TRUE(mem.load((i + 1) * 0x10000, 0).ok);
    auto out = mem.load(0x90000, 0);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(mem.stats().mshrStalls, 1u);
    // The stalled access must not leak into the stats.
    EXPECT_EQ(mem.stats().l1dAccesses, mshrs);
    EXPECT_EQ(mem.stats().llcDemandMisses, mshrs);
}

TEST(Hierarchy, StoresNeverStall)
{
    Hierarchy mem(defaultParams());
    const unsigned mshrs = mem.params().l1d.mshrs;
    for (unsigned i = 0; i < mshrs + 4; ++i) {
        auto out = mem.store((i + 1) * 0x10000, 0);
        EXPECT_TRUE(out.ok);
    }
}

TEST(Hierarchy, PrefetchFillsL2NotL1)
{
    Hierarchy mem(defaultParams());
    const LineAddr line = lineOf(0x40000);
    mem.enqueuePrefetch(line);
    EXPECT_EQ(mem.stats().prefetchesRequested, 1u);

    // Let the prefetch issue and complete.
    mem.tick(1);
    EXPECT_EQ(mem.stats().prefetchesIssued, 1u);
    const Cycle done = 1 + mem.params().l2.latency +
                       mem.params().dramLatency + 1;
    mem.tick(done);
    EXPECT_TRUE(mem.isCachedOrInFlightL2(line));
    EXPECT_FALSE(mem.isCachedL1D(line));

    // A demand access now classifies as a timely prefetch.
    auto out = mem.load(0x40000, done);
    EXPECT_EQ(out.cls, DemandClass::Timely);
}

TEST(Hierarchy, ShorterWaitingTimeClassification)
{
    Hierarchy mem(defaultParams());
    const LineAddr line = lineOf(0x50000);
    mem.enqueuePrefetch(line);
    mem.tick(1); // issue
    // Demand arrives while the prefetch is still in flight.
    auto out = mem.load(0x50000, 10);
    EXPECT_EQ(out.cls, DemandClass::Shorter);
    // The merged demand completes when the prefetch does: strictly
    // earlier than a fresh miss issued at cycle 10 would.
    const auto &p = mem.params();
    EXPECT_LT(out.readyAt, 10 + p.l1d.latency + p.l2.latency +
                               p.dramLatency + p.l1d.latency);
}

TEST(Hierarchy, NonTimelyClassification)
{
    HierarchyParams p;
    p.prefetchIssuePerCycle = 1;
    Hierarchy mem(p);
    // Two queued prefetches, one issue slot per cycle: the second
    // request is identified but not yet issued when demand arrives.
    mem.enqueuePrefetch(lineOf(0x68000));
    mem.enqueuePrefetch(lineOf(0x60000));
    auto out = mem.load(0x60000, 0);
    EXPECT_EQ(out.cls, DemandClass::NonTimely);
    // The demand takes over; the queue entry is consumed.
    EXPECT_EQ(mem.stats().classCount(DemandClass::NonTimely), 1u);
}

TEST(Hierarchy, WrongPrefetchCountedOnFinalize)
{
    Hierarchy mem(defaultParams());
    mem.enqueuePrefetch(lineOf(0x70000));
    mem.tick(1);
    mem.tick(2000); // fill completes, line sits unused
    mem.finalize();
    EXPECT_EQ(mem.stats().wrongPrefetches, 1u);
}

TEST(Hierarchy, PrefetchFilteredWhenCached)
{
    Hierarchy mem(defaultParams());
    Cycle t = mem.load(0x80000, 0).readyAt + 1;
    mem.tick(t);
    mem.enqueuePrefetch(lineOf(0x80000));
    EXPECT_EQ(mem.stats().prefetchesFiltered, 1u);
    EXPECT_EQ(mem.stats().prefetchesIssued, 0u);
}

TEST(Hierarchy, PrefetchQueueOverflowDropsOldest)
{
    HierarchyParams p;
    p.prefetchQueueEntries = 2;
    Hierarchy mem(p);
    mem.enqueuePrefetch(1);
    mem.enqueuePrefetch(2);
    mem.enqueuePrefetch(3); // drops line 1
    EXPECT_EQ(mem.stats().prefetchesDropped, 1u);
}

TEST(Hierarchy, PrefetchMshrReserveLeavesRoomForDemand)
{
    HierarchyParams p;
    p.l2.mshrs = 6;
    p.prefetchMshrReserve = 4;
    p.prefetchIssuePerCycle = 8;
    Hierarchy mem(p);
    for (LineAddr l = 100; l < 120; ++l)
        mem.enqueuePrefetch(l);
    mem.tick(1);
    // Only (mshrs - reserve) prefetches may be outstanding.
    EXPECT_EQ(mem.stats().prefetchesIssued, 2u);
    // Demand can still allocate.
    EXPECT_TRUE(mem.load(0xA0000, 2).ok);
}

TEST(Hierarchy, InclusiveBackInvalidation)
{
    HierarchyParams p;
    // L2 with a single set of 2 ways; L1 large enough to keep lines.
    p.l2.sizeBytes = 2 * LineBytes;
    p.l2.assoc = 2;
    p.l2.mshrs = 8;
    Hierarchy mem(p);

    Cycle t = 0;
    t = mem.load(0 * 64, t).readyAt + 1;
    mem.tick(t);
    t = mem.load(1 * 64, t).readyAt + 1;
    mem.tick(t);
    EXPECT_TRUE(mem.isCachedL1D(0));
    // Third line evicts one of the first two from L2, which must also
    // leave the L1 (inclusion).
    t = mem.load(2 * 64, t).readyAt + 1;
    mem.tick(t);
    EXPECT_FALSE(mem.isCachedL1D(0) && mem.isCachedL1D(1));
}

TEST(Hierarchy, InstructionFetchPath)
{
    Hierarchy mem(defaultParams());
    auto out = mem.fetch(0x400000, 0);
    ASSERT_TRUE(out.ok);
    EXPECT_FALSE(out.l1Hit);
    // I-side misses must not pollute the data-side classification.
    EXPECT_EQ(mem.stats().demandL2Accesses, 0u);
    EXPECT_EQ(mem.stats().l1iMisses, 1u);
    const Cycle later = out.readyAt + 1;
    EXPECT_TRUE(mem.fetch(0x400000, later).l1Hit);
}

TEST(Hierarchy, DramTrafficAccounting)
{
    Hierarchy mem(defaultParams());
    mem.load(0x10000, 0);
    EXPECT_EQ(mem.stats().dramBytesRead, LineBytes);
    mem.enqueuePrefetch(lineOf(0x20000));
    mem.tick(1);
    EXPECT_EQ(mem.stats().dramBytesRead, 2 * LineBytes);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    Hierarchy mem(defaultParams());
    Cycle t = mem.load(0x10000, 0).readyAt + 1;
    mem.tick(t);
    mem.resetStats();
    EXPECT_EQ(mem.stats().l1dAccesses, 0u);
    // The line is still cached.
    EXPECT_TRUE(mem.load(0x10000, t).l1Hit);
}

TEST(Hierarchy, PrefetchToL1Ablation)
{
    HierarchyParams p;
    p.prefetchToL1 = true;
    Hierarchy mem(p);
    const LineAddr line = lineOf(0xB0000);
    mem.enqueuePrefetch(line);
    mem.tick(1);
    mem.tick(2000);
    EXPECT_TRUE(mem.isCachedL1D(line));
    // A demand access now hits in the L1 directly.
    auto out = mem.load(0xB0000, 2000);
    EXPECT_TRUE(out.l1Hit);
}

TEST(Hierarchy, DramBandwidthThrottleSpacesFills)
{
    HierarchyParams p;
    p.dramMinInterval = 50;
    Hierarchy mem(p);
    auto a = mem.load(0x10000, 0);
    auto b = mem.load(0x20000, 0);
    auto c = mem.load(0x30000, 0);
    // Same-cycle misses serialise at the DRAM: fills 50 cycles apart.
    EXPECT_EQ(b.readyAt, a.readyAt + 50);
    EXPECT_EQ(c.readyAt, b.readyAt + 50);
}

TEST(Hierarchy, DramThrottleOffByDefault)
{
    Hierarchy mem(HierarchyParams{});
    auto a = mem.load(0x10000, 0);
    auto b = mem.load(0x20000, 0);
    EXPECT_EQ(a.readyAt, b.readyAt); // latency-only model
}

TEST(Hierarchy, NextEventCycleTracksFills)
{
    Hierarchy mem(defaultParams());
    EXPECT_GT(mem.nextEventCycle(), 1ull << 60); // idle sentinel
    auto out = mem.load(0x10000, 0);
    EXPECT_LE(mem.nextEventCycle(), out.readyAt);
}

} // anonymous namespace
} // namespace cbws
