/**
 * @file
 * Shared helpers for the unit and integration tests.
 */

#ifndef CBWS_TESTS_TEST_UTIL_HH
#define CBWS_TESTS_TEST_UTIL_HH

#include <set>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "trace/trace.hh"

namespace cbws
{
namespace test
{

/**
 * PrefetchSink that records every issued line and serves isCached()
 * from a configurable set.
 */
class MockSink : public PrefetchSink
{
  public:
    void
    issuePrefetch(LineAddr line, PfSource src) override
    {
        issued.push_back(line);
        sources.push_back(src);
    }

    bool
    isCached(LineAddr line) const override
    {
        return cached.count(line) > 0;
    }

    bool
    wasIssued(LineAddr line) const
    {
        for (LineAddr l : issued)
            if (l == line)
                return true;
        return false;
    }

    std::vector<LineAddr> issued;
    std::vector<PfSource> sources;
    std::set<LineAddr> cached;
};

/** Feed a memory access (as a committed op) into a prefetcher. */
inline PrefetchContext
memCtx(Addr pc, Addr addr, bool is_write = false, bool l1_hit = false,
       bool l2_miss = true)
{
    PrefetchContext ctx;
    ctx.pc = pc;
    ctx.addr = addr;
    ctx.line = lineOf(addr);
    ctx.isWrite = is_write;
    ctx.l1Hit = l1_hit;
    ctx.l2Miss = l2_miss;
    return ctx;
}

/**
 * Replay a trace's memory records and block markers straight into a
 * prefetcher (no core, no hierarchy) using @p sink.
 */
inline void
replayTrace(const Trace &trace, Prefetcher &pf, PrefetchSink &sink)
{
    for (const auto &rec : trace) {
        switch (rec.cls) {
          case InstClass::BlockBegin:
            pf.blockBegin(rec.blockId, sink);
            break;
          case InstClass::BlockEnd:
            pf.blockEnd(rec.blockId, sink);
            break;
          case InstClass::Load:
          case InstClass::Store: {
            PrefetchContext ctx =
                memCtx(rec.pc, rec.effAddr,
                       rec.cls == InstClass::Store);
            pf.observeAccess(ctx, sink);
            pf.observeCommit(ctx, sink);
            break;
          }
          default:
            break;
        }
    }
}

} // namespace test
} // namespace cbws

#endif // CBWS_TESTS_TEST_UTIL_HH
