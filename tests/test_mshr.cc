/**
 * @file
 * Unit tests for the MSHR file: allocation, merge lookup, drains and
 * the next-ready fast path used by the core's idle skip.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/mshr.hh"

namespace cbws
{
namespace
{

TEST(Mshr, AllocateAndFind)
{
    MshrFile m(4);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.find(10), nullptr);
    auto &e = m.allocate(10, 100, false, false);
    EXPECT_EQ(e.line, 10u);
    EXPECT_EQ(e.readyAt, 100u);
    ASSERT_NE(m.find(10), nullptr);
    EXPECT_EQ(m.inFlight(), 1u);
}

TEST(Mshr, FullAtCapacity)
{
    MshrFile m(2);
    m.allocate(1, 10, false, false);
    m.allocate(2, 20, false, false);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.inFlight(), 2u);
}

TEST(Mshr, DoubleAllocatePanics)
{
    MshrFile m(4);
    m.allocate(1, 10, false, false);
    EXPECT_DEATH({ m.allocate(1, 20, false, false); },
                 "double-allocation");
}

TEST(Mshr, DrainFiresOnlyCompleted)
{
    MshrFile m(4);
    m.allocate(1, 10, false, false);
    m.allocate(2, 20, false, false);
    std::vector<LineAddr> filled;
    m.drain(15, [&](const MshrFile::Entry &e) {
        filled.push_back(e.line);
    });
    ASSERT_EQ(filled.size(), 1u);
    EXPECT_EQ(filled[0], 1u);
    EXPECT_EQ(m.inFlight(), 1u);
    EXPECT_EQ(m.find(1), nullptr);
    EXPECT_NE(m.find(2), nullptr);
}

TEST(Mshr, NextReadyTracksEarliestFill)
{
    MshrFile m(4);
    EXPECT_GT(m.nextReady(), 1ull << 60);
    m.allocate(1, 50, false, false);
    m.allocate(2, 30, false, false);
    EXPECT_EQ(m.nextReady(), 30u);
    m.drain(30, [](const MshrFile::Entry &) {});
    EXPECT_EQ(m.nextReady(), 50u);
    m.drain(100, [](const MshrFile::Entry &) {});
    EXPECT_GT(m.nextReady(), 1ull << 60);
}

TEST(Mshr, DrainBeforeNextReadyIsFree)
{
    MshrFile m(4);
    m.allocate(1, 100, false, false);
    unsigned calls = 0;
    m.drain(50, [&](const MshrFile::Entry &) { ++calls; });
    EXPECT_EQ(calls, 0u);
    EXPECT_EQ(m.inFlight(), 1u);
}

TEST(Mshr, MergedFlagsPreserved)
{
    MshrFile m(4);
    auto &e = m.allocate(7, 40, /*is_prefetch=*/true,
                         /*is_write=*/false);
    e.demanded = true;
    e.isWrite = true;
    bool saw = false;
    m.drain(40, [&](const MshrFile::Entry &entry) {
        saw = true;
        EXPECT_TRUE(entry.isPrefetch);
        EXPECT_TRUE(entry.demanded);
        EXPECT_TRUE(entry.isWrite);
    });
    EXPECT_TRUE(saw);
}

TEST(Mshr, ClearDropsEverything)
{
    MshrFile m(2);
    m.allocate(1, 10, false, false);
    m.allocate(2, 20, false, false);
    m.clear();
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.inFlight(), 0u);
    EXPECT_GT(m.nextReady(), 1ull << 60);
}

TEST(Mshr, ReuseAfterDrain)
{
    MshrFile m(1);
    m.allocate(1, 10, false, false);
    EXPECT_TRUE(m.full());
    m.drain(10, [](const MshrFile::Entry &) {});
    EXPECT_FALSE(m.full());
    m.allocate(2, 20, false, false);
    EXPECT_NE(m.find(2), nullptr);
}

} // anonymous namespace
} // namespace cbws
