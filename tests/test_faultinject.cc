/**
 * @file
 * Deterministic fault-injection harness: firing schedules must be a
 * pure function of (seed, site, hit index), CBWS_FAULT parsing must
 * reject bad specs without leaving sites half-armed, and the
 * trace-cache corruption path must degrade to re-synthesis — never
 * a crash, never silently wrong data.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/faultinject.hh"
#include "trace/tracecache.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

/** The injector is process-global; leave it disarmed for everyone. */
class FaultInjectTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }

    void
    TearDown() override
    {
        FaultInjector::instance().reset();
        ::unsetenv("CBWS_FAULT");
        ::unsetenv("CBWS_FAULT_SEED");
    }
};

TEST_F(FaultInjectTest, DisarmedSiteNeverFires)
{
    auto &fi = FaultInjector::instance();
    EXPECT_FALSE(fi.anyArmed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(fi.shouldFire(FaultSite::PoolJob));
    EXPECT_EQ(fi.fired(FaultSite::PoolJob), 0u);
}

TEST_F(FaultInjectTest, ArmAtFiresExactlyOnTheListedHits)
{
    auto &fi = FaultInjector::instance();
    fi.armAt(FaultSite::CheckpointAppend, {3, 7});
    std::vector<std::uint64_t> fired;
    for (std::uint64_t n = 1; n <= 10; ++n)
        if (fi.shouldFire(FaultSite::CheckpointAppend))
            fired.push_back(n);
    EXPECT_EQ(fired, (std::vector<std::uint64_t>{3, 7}));
    EXPECT_EQ(fi.hits(FaultSite::CheckpointAppend), 10u);
    EXPECT_EQ(fi.fired(FaultSite::CheckpointAppend), 2u);
}

TEST_F(FaultInjectTest, RateScheduleIsDeterministicPerSeed)
{
    auto &fi = FaultInjector::instance();

    const auto schedule = [&](std::uint64_t seed) {
        fi.reset();
        fi.arm(FaultSite::SnapshotWrite, 0.5, seed);
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(fi.shouldFire(FaultSite::SnapshotWrite));
        return fires;
    };

    const auto a = schedule(42);
    EXPECT_EQ(a, schedule(42)) << "same seed, same schedule";
    EXPECT_NE(a, schedule(43)) << "different seed, different schedule";

    // A 0.5 rate over 200 hits should fire a plausible fraction —
    // the draw is uniform, not degenerate.
    const auto fired = std::count(a.begin(), a.end(), true);
    EXPECT_GT(fired, 50);
    EXPECT_LT(fired, 150);
}

TEST_F(FaultInjectTest, RateOneFiresAlwaysRateZeroDisarms)
{
    auto &fi = FaultInjector::instance();
    fi.arm(FaultSite::TraceCacheStore, 1.0);
    EXPECT_TRUE(fi.shouldFire(FaultSite::TraceCacheStore));
    EXPECT_TRUE(fi.shouldFire(FaultSite::TraceCacheStore));

    fi.arm(FaultSite::TraceCacheStore, 0.0);
    EXPECT_FALSE(fi.shouldFire(FaultSite::TraceCacheStore));
}

TEST_F(FaultInjectTest, ConfigureFromEnvParsesRatesAndExactHits)
{
    ::setenv("CBWS_FAULT", "pool-job@2,trace-cache-load:0.25", 1);
    ::setenv("CBWS_FAULT_SEED", "9", 1);
    auto &fi = FaultInjector::instance();
    ASSERT_TRUE(fi.configureFromEnv());
    EXPECT_TRUE(fi.anyArmed());

    EXPECT_FALSE(fi.shouldFire(FaultSite::PoolJob)); // hit 1
    EXPECT_TRUE(fi.shouldFire(FaultSite::PoolJob));  // hit 2
    EXPECT_FALSE(fi.shouldFire(FaultSite::PoolJob)); // hit 3
}

TEST_F(FaultInjectTest, BareSiteNameMeansAlwaysFire)
{
    ::setenv("CBWS_FAULT", "snapshot-write", 1);
    auto &fi = FaultInjector::instance();
    ASSERT_TRUE(fi.configureFromEnv());
    EXPECT_TRUE(fi.shouldFire(FaultSite::SnapshotWrite));
}

TEST_F(FaultInjectTest, UnsetOrEmptyEnvDisablesEverything)
{
    ::unsetenv("CBWS_FAULT");
    auto &fi = FaultInjector::instance();
    ASSERT_TRUE(fi.configureFromEnv());
    EXPECT_FALSE(fi.anyArmed());

    ::setenv("CBWS_FAULT", "", 1);
    ASSERT_TRUE(fi.configureFromEnv());
    EXPECT_FALSE(fi.anyArmed());
}

TEST_F(FaultInjectTest, BadSpecsAreRejectedAndLeaveNothingArmed)
{
    auto &fi = FaultInjector::instance();
    const char *bad[] = {
        "no-such-site",           // unknown name
        "pool-job@0",             // hit indices are 1-based
        "pool-job@two",           // non-numeric hit
        "trace-cache-load:0.5x",  // trailing junk on the rate
        "pool-job:1,nope:0.5",    // later item poisons the whole spec
    };
    for (const char *spec : bad) {
        ::setenv("CBWS_FAULT", spec, 1);
        Result<void> r = fi.configureFromEnv();
        EXPECT_FALSE(r) << spec;
        EXPECT_EQ(r.code(), Errc::InvalidArgument) << spec;
        EXPECT_FALSE(fi.anyArmed()) << spec;
    }
}

TEST_F(FaultInjectTest, SiteNamesRoundTripThroughTheEnvSyntax)
{
    auto &fi = FaultInjector::instance();
    for (unsigned i = 0; i < NumFaultSites; ++i) {
        const auto site = static_cast<FaultSite>(i);
        ::setenv("CBWS_FAULT",
                 (std::string(toString(site)) + "@1").c_str(), 1);
        ASSERT_TRUE(fi.configureFromEnv()) << toString(site);
        EXPECT_TRUE(fi.shouldFire(site)) << toString(site);
        fi.reset();
    }
}

/** Temp-file fixture for the corruption helpers. */
class CorruptFileTest : public FaultInjectTest
{
  protected:
    void
    SetUp() override
    {
        FaultInjectTest::SetUp();
        char tmpl[] = "/tmp/cbws-faultinject-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void
    TearDown() override
    {
        const std::string cmd = "rm -rf '" + dir_ + "'";
        if (std::system(cmd.c_str()) != 0)
            ADD_FAILURE() << "cleanup failed: " << cmd;
        FaultInjectTest::TearDown();
    }

    std::string
    writeFile(const std::string &name, const std::string &content)
    {
        const std::string path = dir_ + "/" + name;
        std::FILE *f = std::fopen(path.c_str(), "wb");
        EXPECT_NE(f, nullptr);
        std::fwrite(content.data(), 1, content.size(), f);
        std::fclose(f);
        return path;
    }

    static std::string
    readFile(const std::string &path)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        EXPECT_NE(f, nullptr);
        std::string out;
        char buf[4096];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            out.append(buf, got);
        std::fclose(f);
        return out;
    }

    std::string dir_;
};

TEST_F(CorruptFileTest, TruncateHalvesTheFile)
{
    const std::string content(1000, 'x');
    const std::string path = writeFile("t.bin", content);
    ASSERT_TRUE(faultinject::corruptFile(
        path, faultinject::CorruptMode::Truncate, 1));
    EXPECT_EQ(readFile(path).size(), content.size() / 2);
}

TEST_F(CorruptFileTest, FlipBytesKeepsSizeChangesContent)
{
    const std::string content(1000, 'x');
    const std::string path = writeFile("f.bin", content);
    ASSERT_TRUE(faultinject::corruptFile(
        path, faultinject::CorruptMode::FlipBytes, 1));
    const std::string after = readFile(path);
    EXPECT_EQ(after.size(), content.size());
    EXPECT_NE(after, content);

    // Deterministic: the same seed flips the same bytes back.
    ASSERT_TRUE(faultinject::corruptFile(
        path, faultinject::CorruptMode::FlipBytes, 1));
    EXPECT_EQ(readFile(path), content);
}

TEST_F(CorruptFileTest, MissingFileIsNotFound)
{
    Result<void> r = faultinject::corruptFile(
        dir_ + "/absent", faultinject::CorruptMode::Truncate, 1);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.code(), Errc::NotFound);
}

TEST_F(CorruptFileTest, CorruptedTraceCacheFileFallsBackToResynthesis)
{
    // The acceptance scenario: a cache hit turns out to be damaged;
    // the load reports Corrupt (not a crash), the caller
    // re-synthesises, and a re-store repairs the cache. Truncation
    // is the damage the format always detects (the body carries no
    // checksum, so mid-payload bit flips can slip through — a
    // documented trade-off of the compact binary format).
    TraceCache cache(dir_);
    auto workload = findWorkload("fft-simlarge");
    ASSERT_NE(workload, nullptr);
    WorkloadParams params;
    params.maxInstructions = 6000;
    params.seed = 42;
    Trace original;
    workload->generate(original, params);
    const TraceCache::Key key{"fft-simlarge", 6000, 42};
    ASSERT_TRUE(cache.store(key, original));

    ASSERT_TRUE(faultinject::corruptFile(
        cache.pathFor(key), faultinject::CorruptMode::Truncate, 3));
    Trace loaded;
    Result<void> r = cache.load(key, loaded);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.code(), Errc::Corrupt);
    EXPECT_TRUE(loaded.empty()) << "failed load must leave no data";

    // Re-synthesise and repair, as runMatrix does on any miss.
    Trace fresh;
    workload->generate(fresh, params);
    ASSERT_TRUE(cache.store(key, fresh));
    ASSERT_TRUE(cache.load(key, loaded));
    EXPECT_EQ(loaded.size(), original.size());
}

TEST_F(CorruptFileTest, TraceCacheCorruptSiteForcesTheMissPath)
{
    // The injected variant of the same scenario: the file on disk is
    // fine, but the trace-cache-corrupt site manufactures a Corrupt
    // verdict after the read — exercising the fallback without real
    // damage.
    TraceCache cache(dir_);
    auto workload = findWorkload("fft-simlarge");
    ASSERT_NE(workload, nullptr);
    WorkloadParams params;
    params.maxInstructions = 6000;
    params.seed = 42;
    Trace original;
    workload->generate(original, params);
    const TraceCache::Key key{"fft-simlarge", 6000, 42};
    ASSERT_TRUE(cache.store(key, original));

    auto &fi = FaultInjector::instance();
    fi.armAt(FaultSite::TraceCacheCorrupt, {1});
    Trace loaded;
    Result<void> r = cache.load(key, loaded);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.code(), Errc::Corrupt);
    EXPECT_TRUE(loaded.empty());

    // Hit 2 is past the schedule: the very next load succeeds — the
    // file itself was never harmed.
    ASSERT_TRUE(cache.load(key, loaded));
    EXPECT_EQ(loaded.size(), original.size());
}

} // anonymous namespace
} // namespace cbws
