/**
 * @file
 * On-disk trace cache: round-trip fidelity, stale-key rejection,
 * truncation tolerance, and the disabled-cache no-op contract. Every
 * rejection path must land as a miss with an empty output trace so
 * callers re-synthesise.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "trace/tracecache.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

/** Fresh cache directory per test, removed on teardown. */
class TraceCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/cbws-tracecache-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void
    TearDown() override
    {
        const std::string cmd = "rm -rf '" + dir_ + "'";
        if (std::system(cmd.c_str()) != 0)
            ADD_FAILURE() << "cleanup failed: " << cmd;
    }

    Trace
    makeTrace(std::uint64_t insts = 6000, std::uint64_t seed = 42)
    {
        auto w = findWorkload("fft-simlarge");
        EXPECT_NE(w, nullptr);
        WorkloadParams params;
        params.maxInstructions = insts;
        params.seed = seed;
        Trace trace;
        trace.reserve(insts + 512);
        w->generate(trace, params);
        EXPECT_FALSE(trace.empty());
        return trace;
    }

    std::string dir_;
};

bool
tracesEqual(const Trace &a, const Trace &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.records().data(), b.records().data(),
                        a.size() * sizeof(TraceRecord)) == 0);
}

TEST_F(TraceCacheTest, RoundTripIsBitExact)
{
    TraceCache cache(dir_);
    const TraceCache::Key key{"fft-simlarge", 6000, 42};
    const Trace original = makeTrace();

    Trace missed;
    EXPECT_FALSE(cache.load(key, missed)) << "cold cache must miss";
    EXPECT_TRUE(missed.empty());
    EXPECT_EQ(cache.misses(), 1u);

    ASSERT_TRUE(cache.store(key, original));
    Trace loaded;
    ASSERT_TRUE(cache.load(key, loaded));
    EXPECT_TRUE(tracesEqual(original, loaded));
    EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(TraceCacheTest, DistinctKeysGetDistinctFiles)
{
    TraceCache cache(dir_);
    const TraceCache::Key a{"fft-simlarge", 6000, 42};
    const TraceCache::Key b{"fft-simlarge", 9000, 42};
    const TraceCache::Key c{"fft-simlarge", 6000, 7};
    EXPECT_NE(cache.pathFor(a), cache.pathFor(b));
    EXPECT_NE(cache.pathFor(a), cache.pathFor(c));

    ASSERT_TRUE(cache.store(a, makeTrace(6000)));
    Trace loaded;
    EXPECT_FALSE(cache.load(b, loaded)) << "different budget";
    EXPECT_FALSE(cache.load(c, loaded)) << "different seed";
}

TEST_F(TraceCacheTest, StaleEmbeddedKeyIsRejected)
{
    TraceCache cache(dir_);
    const TraceCache::Key real{"fft-simlarge", 6000, 42};
    const TraceCache::Key wanted{"fft-simlarge", 6000, 43};
    ASSERT_TRUE(cache.store(real, makeTrace()));

    // Simulate a renamed / copied cache file: the payload carries
    // key `real` but sits at `wanted`'s path.
    ASSERT_EQ(std::rename(cache.pathFor(real).c_str(),
                          cache.pathFor(wanted).c_str()),
              0);
    Trace loaded;
    EXPECT_FALSE(cache.load(wanted, loaded));
    EXPECT_TRUE(loaded.empty());
}

TEST_F(TraceCacheTest, TruncatedFileIsAMiss)
{
    TraceCache cache(dir_);
    const TraceCache::Key key{"fft-simlarge", 6000, 42};
    ASSERT_TRUE(cache.store(key, makeTrace()));
    const std::string path = cache.pathFor(key);

    // Chop the file roughly in half — mid-body corruption.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long full = std::ftell(f);
    std::fclose(f);
    ASSERT_GT(full, 32);
    ASSERT_EQ(::truncate(path.c_str(), full / 2), 0);

    Trace loaded;
    EXPECT_FALSE(cache.load(key, loaded));
    EXPECT_TRUE(loaded.empty());
    EXPECT_GE(cache.misses(), 1u);
}

TEST_F(TraceCacheTest, CorruptMagicIsAMiss)
{
    TraceCache cache(dir_);
    const TraceCache::Key key{"fft-simlarge", 6000, 42};
    ASSERT_TRUE(cache.store(key, makeTrace()));

    std::FILE *f = std::fopen(cache.pathFor(key).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputs("XXXX", f);
    std::fclose(f);

    Trace loaded;
    EXPECT_FALSE(cache.load(key, loaded));
}

TEST_F(TraceCacheTest, StoreThenLoadOverwrites)
{
    TraceCache cache(dir_);
    const TraceCache::Key key{"fft-simlarge", 6000, 42};
    const Trace first = makeTrace(6000, 42);
    const Trace second = makeTrace(6000, 9);
    ASSERT_FALSE(tracesEqual(first, second));

    ASSERT_TRUE(cache.store(key, first));
    ASSERT_TRUE(cache.store(key, second)); // atomic replace
    Trace loaded;
    ASSERT_TRUE(cache.load(key, loaded));
    EXPECT_TRUE(tracesEqual(second, loaded));
}

TEST(TraceCacheDisabled, EverythingIsANoOp)
{
    TraceCache cache;
    EXPECT_FALSE(cache.enabled());
    const TraceCache::Key key{"fft-simlarge", 6000, 42};
    EXPECT_TRUE(cache.pathFor(key).empty());

    Trace trace;
    trace.append(TraceRecord{});
    EXPECT_FALSE(cache.store(key, trace));
    Trace loaded;
    loaded.append(TraceRecord{});
    EXPECT_FALSE(cache.load(key, loaded));
    EXPECT_TRUE(loaded.empty()) << "load() clears its output";
}

TEST(TraceCacheEnv, FromEnvHonoursDisableSpellings)
{
    for (const char *off : {"", "0", "off"}) {
        ::setenv("CBWS_TRACE_CACHE", off, 1);
        EXPECT_FALSE(TraceCache::fromEnv().enabled()) << off;
    }
    ::setenv("CBWS_TRACE_CACHE", "/tmp/cbws-cache-env-test", 1);
    TraceCache cache = TraceCache::fromEnv();
    EXPECT_TRUE(cache.enabled());
    EXPECT_EQ(cache.directory(), "/tmp/cbws-cache-env-test");
    ::unsetenv("CBWS_TRACE_CACHE");
    EXPECT_FALSE(TraceCache::fromEnv().enabled());
}

} // anonymous namespace
} // namespace cbws
