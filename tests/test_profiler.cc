/**
 * @file
 * Tests of the host-side self-profiler (base/profiler.hh): the
 * disabled path must be near-free, the enabled path's per-phase
 * exclusive times must partition the profiled wall window, nesting
 * must charge inner scopes exclusively, and pool-worker stats must
 * fold into the report at pool teardown.
 *
 * Timing assertions are skipped under sanitizers — instrumentation
 * multiplies the cost of exactly the code paths under test.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "base/jsonparse.hh"
#include "base/profiler.hh"
#include "base/threadpool.hh"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CBWS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CBWS_SANITIZED 1
#endif
#endif
#ifndef CBWS_SANITIZED
#define CBWS_SANITIZED 0
#endif

namespace cbws
{
namespace
{

/** Busy-wait for @p seconds of wall time (sleep would not accrue
 *  meaningfully distinct TSC deltas under coarse schedulers). */
void
spinFor(double seconds)
{
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(seconds);
    volatile std::uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < until)
        sink = sink + 1;
}

/** Every test starts and ends with the profiler off and empty. */
class ProfilerTest : public ::testing::Test
{
  protected:
    void SetUp() override { prof::resetForTest(); }
    void TearDown() override { prof::resetForTest(); }
};

TEST_F(ProfilerTest, DisabledByDefaultAndReportSaysSo)
{
    EXPECT_FALSE(prof::enabled());
    {
        PROF_SCOPE(prof::Phase::Decode); // must be a no-op
        PROF_SCOPE(prof::Phase::Dram);
    }
    const prof::Report rep = prof::report();
    EXPECT_FALSE(rep.enabled);
    for (unsigned p = 0; p < prof::NumPhases; ++p) {
        EXPECT_EQ(rep.phaseEntries[p], 0u);
        EXPECT_EQ(rep.phaseSeconds[p], 0.0);
    }
}

TEST_F(ProfilerTest, DisabledScopeCostIsNegligible)
{
#if CBWS_SANITIZED
    GTEST_SKIP() << "timing bounds do not hold under sanitizers";
#endif
    ASSERT_FALSE(prof::enabled());

    // Representative work chunk: a few hundred ns of arithmetic, the
    // scale of one hierarchy tick. One predicted branch on top of it
    // must stay in the noise. Min-of-N suppresses scheduler jitter.
    constexpr int kIters = 20000;
    constexpr int kInner = 256;
    constexpr int kRepeats = 7;
    auto work = [](volatile std::uint64_t &acc) {
        std::uint64_t x = acc + 0x9E3779B97F4A7C15ull;
        for (int i = 0; i < kInner; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        acc = x;
    };
    auto timeLoop = [&](bool scoped) {
        double best = 1e30;
        for (int r = 0; r < kRepeats; ++r) {
            volatile std::uint64_t acc = 1;
            const auto t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kIters; ++i) {
                if (scoped) {
                    PROF_SCOPE(prof::Phase::Decode);
                    work(acc);
                } else {
                    work(acc);
                }
            }
            const auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best, std::chrono::duration<double>(t1 - t0).count());
        }
        return best;
    };

    const double plain = timeLoop(false);
    const double scoped = timeLoop(true);
    const double per_scope_ns =
        (scoped - plain) / static_cast<double>(kIters) * 1e9;
    // Either bound proves "negligible": under 2% relative overhead on
    // tick-sized work, or under 3 ns absolute per disabled scope.
    EXPECT_TRUE(scoped <= plain * 1.02 || per_scope_ns < 3.0)
        << "disabled PROF_SCOPE costs " << per_scope_ns
        << " ns (plain " << plain << " s, scoped " << scoped << " s)";
}

TEST_F(ProfilerTest, PhasesPartitionTheWallWindow)
{
    prof::enable();
    {
        PROF_SCOPE(prof::Phase::TraceSynthesis);
        spinFor(0.02);
    }
    {
        PROF_SCOPE(prof::Phase::Decode);
        spinFor(0.02);
    }
    const prof::Report rep = prof::report();
    ASSERT_TRUE(rep.enabled);
    EXPECT_GT(rep.wallSeconds, 0.03);
    // Acceptance criterion: the per-phase exclusive times of the main
    // thread sum to its wall time within 10% (unattributed time lands
    // in Phase::Other, so the partition is exact up to calibration).
    EXPECT_NEAR(rep.mainThreadSeconds, rep.wallSeconds,
                0.1 * rep.wallSeconds);
    const unsigned ts =
        static_cast<unsigned>(prof::Phase::TraceSynthesis);
    const unsigned de = static_cast<unsigned>(prof::Phase::Decode);
    EXPECT_EQ(rep.phaseEntries[ts], 1u);
    EXPECT_EQ(rep.phaseEntries[de], 1u);
    EXPECT_GT(rep.phaseSeconds[ts], 0.01);
    EXPECT_GT(rep.phaseSeconds[de], 0.01);
}

TEST_F(ProfilerTest, NestedScopesChargeTheInnerPhaseExclusively)
{
    prof::enable();
    {
        PROF_SCOPE(prof::Phase::Decode);
        spinFor(0.005);
        {
            PROF_SCOPE(prof::Phase::Dram);
            spinFor(0.02);
        }
        spinFor(0.005);
    }
    const prof::Report rep = prof::report();
    const double decode =
        rep.phaseSeconds[static_cast<unsigned>(prof::Phase::Decode)];
    const double dram =
        rep.phaseSeconds[static_cast<unsigned>(prof::Phase::Dram)];
    // The 20 ms inner window must be attributed to Dram, not Decode:
    // Decode keeps only its ~10 ms of exclusive time.
    EXPECT_GT(dram, 0.015);
    EXPECT_LT(decode, dram);
    EXPECT_GT(decode, 0.005);
}

TEST_F(ProfilerTest, SampledScopesExtrapolateAndStayZeroSum)
{
#if CBWS_SANITIZED
    GTEST_SKIP() << "timing bounds do not hold under sanitizers";
#endif
    prof::enable();
    // 64 identical work chunks; with mask 3 only one in four is
    // timed, the rest are merely counted. Inline extrapolation must
    // still attribute roughly all 64 chunks to the phase, stolen
    // zero-sum from the enclosing phase (Other here).
    constexpr int kChunks = 64;
    constexpr double kChunkSec = 0.0005;
    for (int i = 0; i < kChunks; ++i) {
        PROF_SCOPE_SAMPLED(prof::Phase::PfObserve, 3);
        spinFor(kChunkSec);
    }
    const prof::Report rep = prof::report();
    const unsigned p = static_cast<unsigned>(prof::Phase::PfObserve);
    EXPECT_EQ(rep.phaseEntries[p],
              static_cast<std::uint64_t>(kChunks));
    const double expect = kChunks * kChunkSec;
    EXPECT_NEAR(rep.phaseSeconds[p], expect, 0.35 * expect);
    // Zero-sum: the thread's phases still partition the window.
    EXPECT_NEAR(rep.mainThreadSeconds, rep.wallSeconds,
                0.10 * rep.wallSeconds);
}

TEST_F(ProfilerTest, EnableIsIdempotentAndSticky)
{
    prof::enable();
    ASSERT_TRUE(prof::enabled());
    const auto t0 = std::chrono::steady_clock::now();
    spinFor(0.005);
    prof::enable(); // must not re-anchor the calibration epoch
    const prof::Report rep = prof::report();
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    EXPECT_GE(rep.wallSeconds, elapsed * 0.5);
}

TEST_F(ProfilerTest, PoolWorkerStatsFoldInAtTeardown)
{
    prof::enable();
    {
        ThreadPool pool(2);
        ASSERT_EQ(pool.workers(), 2u);
        for (int i = 0; i < 8; ++i)
            pool.submit([] { spinFor(0.002); });
        pool.wait();
    } // ~ThreadPool folds worker stats into the profiler registry
    const prof::Report rep = prof::report();
    ASSERT_EQ(rep.poolsObserved, 1u);
    ASSERT_EQ(rep.workers.size(), 2u);
    std::uint64_t jobs = 0;
    double busy = 0.0;
    for (const auto &w : rep.workers) {
        jobs += w.jobs;
        busy += w.busySeconds;
    }
    EXPECT_EQ(jobs, 8u);
    EXPECT_GT(busy, 0.008);
    EXPECT_EQ(rep.jobMicros.total(), 8u);
}

TEST_F(ProfilerTest, DisabledPoolRecordsNothing)
{
    ASSERT_FALSE(prof::enabled());
    {
        ThreadPool pool(2);
        for (int i = 0; i < 4; ++i)
            pool.submit([] {});
        pool.wait();
    }
    prof::enable(); // report() returns data only when enabled
    const prof::Report rep = prof::report();
    EXPECT_EQ(rep.poolsObserved, 0u);
    EXPECT_TRUE(rep.workers.empty());
}

TEST_F(ProfilerTest, WriteJsonFileEmitsProvenanceStampedArtifact)
{
    prof::enable();
    {
        PROF_SCOPE(prof::Phase::CacheLookup);
        spinFor(0.002);
    }
    const std::string path =
        testing::TempDir() + "cbws_profile_test.json";
    ASSERT_TRUE(prof::writeJsonFile(path, prof::report()));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    Result<JsonValue> doc = parseJson(buf.str());
    ASSERT_TRUE(doc.ok()) << doc.error().str();
    EXPECT_EQ(doc.value().strOr("format"), "cbws-profile");
    EXPECT_EQ(doc.value().uintOr("schema_version"), 1u);
    const JsonValue *prov = doc.value().find("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_FALSE(prov->strOr("git_sha").empty());
    EXPECT_FALSE(prov->strOr("compiler").empty());
    const JsonValue *profile = doc.value().find("profile");
    ASSERT_NE(profile, nullptr);
    const JsonValue *phases = profile->find("phases");
    ASSERT_NE(phases, nullptr);
    const JsonValue *cache = phases->find("cache_lookup");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->uintOr("entries"), 1u);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace cbws
