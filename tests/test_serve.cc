/**
 * @file
 * The serving layer minus the sockets: protocol round-trips and job
 * keys, the persistent JobQueue (spool recovery, dedup, sealing), and
 * the sharded worker loop — including the load-bearing property that
 * shard-split execution merged back together is byte-identical to the
 * serial in-process reference, and that re-running a finished shard
 * restores every cell instead of re-simulating.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "base/socket.hh"
#include "serve/jobqueue.hh"
#include "serve/protocol.hh"
#include "serve/supervisor.hh"
#include "serve/worker.hh"
#include "sim/checkpoint.hh"

namespace cbws
{
namespace serve
{
namespace
{

JobSpec
smallSpec()
{
    JobSpec spec;
    spec.workloads = {"nw", "fft-simlarge"};
    spec.schemes = {"No-Prefetch", "Stride"};
    spec.insts = 20000;
    spec.seed = 42;
    return spec;
}

std::string
makeTempDir()
{
    std::string tmpl = testing::TempDir() + "cbws_serve_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = ::mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return dir ? std::string(dir) : std::string();
}

// --- protocol ---------------------------------------------------------

TEST(ServeProtocol, SubmitRequestRoundTrips)
{
    Request request;
    request.op = Request::Op::Submit;
    request.spec = smallSpec();
    request.spec.cores = 2;
    request.spec.dramBackend = "fixed";
    request.spec.pfOpts = {"degree=4"};

    Result<Request> back = parseRequest(requestLine(request));
    ASSERT_TRUE(back.ok()) << back.error().str();
    EXPECT_EQ(back.value().op, Request::Op::Submit);
    EXPECT_EQ(back.value().spec.workloads, request.spec.workloads);
    EXPECT_EQ(back.value().spec.schemes, request.spec.schemes);
    EXPECT_EQ(back.value().spec.insts, request.spec.insts);
    EXPECT_EQ(back.value().spec.seed, request.spec.seed);
    EXPECT_EQ(back.value().spec.cores, request.spec.cores);
    EXPECT_EQ(back.value().spec.dramBackend,
              request.spec.dramBackend);
    EXPECT_EQ(back.value().spec.pfOpts, request.spec.pfOpts);
}

TEST(ServeProtocol, SimpleOpsRoundTrip)
{
    for (Request::Op op :
         {Request::Op::Status, Request::Op::Ping,
          Request::Op::Shutdown}) {
        Request request;
        request.op = op;
        Result<Request> back = parseRequest(requestLine(request));
        ASSERT_TRUE(back.ok()) << back.error().str();
        EXPECT_EQ(back.value().op, op);
    }
    Request request;
    request.op = Request::Op::Result;
    request.job = "deadbeefdeadbeef";
    Result<Request> back = parseRequest(requestLine(request));
    ASSERT_TRUE(back.ok()) << back.error().str();
    EXPECT_EQ(back.value().op, Request::Op::Result);
    EXPECT_EQ(back.value().job, "deadbeefdeadbeef");
}

TEST(ServeProtocol, MalformedRequestsRejected)
{
    for (const char *line :
         {"", "not json", "[1,2,3]", "{\"op\":\"fandango\"}",
          "{\"job\":\"x\"}",
          "{\"op\":\"submit\",\"job\":{\"workloads\":[],"
          "\"schemes\":[\"CBWS\"]}}",
          "{\"op\":\"submit\",\"job\":{\"workloads\":[\"no-such\"],"
          "\"schemes\":[\"CBWS\"]}}",
          "{\"op\":\"submit\",\"job\":{\"workloads\":[\"nw\"],"
          "\"schemes\":[\"no-such-scheme\"]}}"}) {
        EXPECT_FALSE(parseRequest(line).ok()) << line;
    }
}

TEST(ServeProtocol, SchemeNamesCanonicalised)
{
    // The registry gate is case-insensitive but canonicalises, so a
    // sloppy client and a pedantic one agree on the job key.
    JobSpec sloppy = smallSpec();
    sloppy.schemes = {"no-prefetch", "STRIDE"};
    Result<JsonValue> parsed =
        parseJson(jobSpecJson(sloppy), protocolJsonLimits());
    ASSERT_TRUE(parsed.ok());
    Result<JobSpec> validated = parseJobSpec(parsed.value());
    ASSERT_TRUE(validated.ok()) << validated.error().str();
    EXPECT_EQ(validated.value().schemes,
              (std::vector<std::string>{"No-Prefetch", "Stride"}));
    EXPECT_EQ(jobKey(validated.value()), jobKey(smallSpec()));
}

TEST(ServeProtocol, JobKeyIdentifiesTheExperiment)
{
    const JobSpec spec = smallSpec();
    EXPECT_EQ(jobKey(spec), jobKey(spec));
    EXPECT_EQ(jobKey(spec).size(), 16u);

    JobSpec insts = spec;
    insts.insts = spec.insts + 1;
    EXPECT_NE(jobKey(insts), jobKey(spec));

    JobSpec seed = spec;
    seed.seed = spec.seed + 1;
    EXPECT_NE(jobKey(seed), jobKey(spec));

    JobSpec schemes = spec;
    schemes.schemes = {"No-Prefetch"};
    EXPECT_NE(jobKey(schemes), jobKey(spec));

    JobSpec cores = spec;
    cores.cores = 2;
    EXPECT_NE(jobKey(cores), jobKey(spec));
}

TEST(ServeProtocol, EventBuildersEmitParseableJson)
{
    const std::string key = "00000000deadbeef";
    const struct
    {
        std::string line;
        const char *kind;
    } events[] = {
        {helloEvent(), "hello"},
        {errorEvent("broken \"quote\""), "error"},
        {pongEvent(), "pong"},
        {byeEvent(), "bye"},
        {ackEvent(key, 4, false, 1), "ack"},
        {workerEvent(key, 0, "spawned", 123, 0), "worker"},
        {cellEvent(key, "nw", "CBWS", 1.25, 3.5, 1, 4), "cell"},
        {statsEvent(key, 2, 4, 2, 40000, 40000, 150, 2, 1), "stats"},
        {sealedEvent(key, false, 4, 1000, 80000, 0, "[{\"x\":1}]"),
         "sealed"},
        {failedEvent(key, "respawn budget exhausted"), "failed"},
    };
    for (const auto &e : events) {
        Result<JsonValue> parsed = parseJson(e.line, JsonLimits());
        ASSERT_TRUE(parsed.ok()) << e.line;
        ASSERT_TRUE(parsed.value().isObject()) << e.line;
        EXPECT_EQ(parsed.value().strOr("event"), e.kind) << e.line;
    }
}

TEST(ServeProtocol, SealedResultExtractedByteExact)
{
    // The embedded report must come back out untouched — the daemon's
    // byte-identity promise would not survive a reserialisation.
    const std::string result =
        "[{\"workload\":\"nw\",\"ipc\":0.5217391304347826}]";
    const std::string line =
        sealedEvent("00000000deadbeef", true, 1, 7, 20000, 0, result);
    Result<std::string> back = extractSealedResult(line);
    ASSERT_TRUE(back.ok()) << back.error().str();
    EXPECT_EQ(back.value(), result);

    EXPECT_FALSE(extractSealedResult(pongEvent()).ok());
    EXPECT_FALSE(extractSealedResult("{\"event\":\"sealed\"").ok());
}

// --- job queue --------------------------------------------------------

TEST(JobQueueTest, SubmitQueuesOncePersistsAcrossReopen)
{
    const std::string dir = makeTempDir();
    const JobSpec spec = smallSpec();

    {
        JobQueue queue;
        ASSERT_TRUE(queue.open(dir).ok());
        EXPECT_TRUE(queue.empty());

        Result<SubmitOutcome> first = queue.submit(spec);
        ASSERT_TRUE(first.ok()) << first.error().str();
        EXPECT_FALSE(first.value().deduped);
        EXPECT_FALSE(first.value().alreadyQueued);
        EXPECT_EQ(first.value().key, jobKey(spec));
        EXPECT_EQ(queue.size(), 1u);

        // Equal spec: acknowledged but not double-queued.
        Result<SubmitOutcome> again = queue.submit(spec);
        ASSERT_TRUE(again.ok());
        EXPECT_TRUE(again.value().alreadyQueued);
        EXPECT_EQ(queue.size(), 1u);

        JobSpec other = spec;
        other.seed = 7;
        Result<SubmitOutcome> second = queue.submit(other);
        ASSERT_TRUE(second.ok());
        EXPECT_EQ(second.value().queuePosition, 1u);
        EXPECT_EQ(queue.size(), 2u);
    }

    // Daemon restart: the spool files bring both jobs back, in order.
    JobQueue reopened;
    ASSERT_TRUE(reopened.open(dir).ok());
    EXPECT_EQ(reopened.size(), 2u);
    for (const Job &job : reopened.jobs())
        EXPECT_EQ(job.key, jobKey(job.spec));
}

TEST(JobQueueTest, SealFrontEnablesDedup)
{
    const std::string dir = makeTempDir();
    const JobSpec spec = smallSpec();
    const std::string result = "[{\"workload\":\"nw\"}]";

    JobQueue queue;
    ASSERT_TRUE(queue.open(dir).ok());
    ASSERT_TRUE(queue.submit(spec).ok());
    EXPECT_FALSE(queue.hasSealed(jobKey(spec)));

    ASSERT_TRUE(queue.sealFront(result).ok());
    EXPECT_TRUE(queue.empty());
    EXPECT_TRUE(queue.hasSealed(jobKey(spec)));

    Result<std::string> loaded = queue.loadSealed(jobKey(spec));
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value(), result);

    // The same experiment again: served from the sealed file, never
    // queued — and a reopened queue must not resurrect its spool.
    Result<SubmitOutcome> again = queue.submit(spec);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again.value().deduped);
    EXPECT_TRUE(queue.empty());

    JobQueue reopened;
    ASSERT_TRUE(reopened.open(dir).ok());
    EXPECT_TRUE(reopened.empty());
    EXPECT_TRUE(reopened.hasSealed(jobKey(spec)));
}

TEST(JobQueueTest, CorruptSpoolDroppedNotFatal)
{
    const std::string dir = makeTempDir();
    {
        JobQueue queue;
        ASSERT_TRUE(queue.open(dir).ok());
        ASSERT_TRUE(queue.submit(smallSpec()).ok());
    }
    // Scribble over a second "spool": recovery must warn and drop it
    // while still requeuing the healthy one.
    ASSERT_TRUE(writeFileAtomic(dir + "/queue/0123456789abcdef.json",
                                "{definitely not a spec")
                    .ok());
    JobQueue reopened;
    ASSERT_TRUE(reopened.open(dir).ok());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.front().key, jobKey(smallSpec()));
}

TEST(JobQueueTest, AtomicWriteAndReadBack)
{
    const std::string dir = makeTempDir();
    const std::string path = dir + "/file.txt";
    ASSERT_TRUE(writeFileAtomic(path, "hello\n").ok());
    ASSERT_TRUE(writeFileAtomic(path, "replaced\n").ok());
    Result<std::string> back = readFile(path);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), "replaced\n");
    Result<std::string> missing = readFile(dir + "/absent");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, Errc::NotFound);
}

// --- sharded worker ---------------------------------------------------

TEST(ServeWorker, ShardedRunMergesByteIdenticalToSerial)
{
    const JobSpec spec = smallSpec();
    Result<std::vector<SimResult>> serial = runJobSerial(spec);
    ASSERT_TRUE(serial.ok()) << serial.error().str();
    const std::string reference = resultJson(serial.value());

    const std::string job_dir = makeTempDir();
    const unsigned shards = 2;
    for (unsigned s = 0; s < shards; ++s)
        ASSERT_EQ(runWorkerShard(spec, job_dir, s, shards, -1), 0)
            << "shard " << s;

    Result<std::vector<SimResult>> merged =
        mergeShards(spec, job_dir, shards);
    ASSERT_TRUE(merged.ok()) << merged.error().str();
    EXPECT_EQ(resultJson(merged.value()), reference);

    // Re-running a finished shard restores every cell from its
    // checkpoint instead of re-simulating; the merge is unchanged.
    ASSERT_EQ(runWorkerShard(spec, job_dir, 0, shards, -1), 0);
    {
        Checkpoint ckpt;
        ASSERT_TRUE(ckpt.open(shardCheckpointPath(job_dir, 0),
                              shardHeader(spec))
                        .ok());
        EXPECT_EQ(ckpt.resumedCells(), spec.cellCount() / shards);
    }
    Result<std::vector<SimResult>> remerged =
        mergeShards(spec, job_dir, shards);
    ASSERT_TRUE(remerged.ok());
    EXPECT_EQ(resultJson(remerged.value()), reference);
}

TEST(ServeWorker, MergeReportsMissingShard)
{
    const JobSpec spec = smallSpec();
    const std::string job_dir = makeTempDir();
    ASSERT_EQ(runWorkerShard(spec, job_dir, 0, 2, -1), 0);
    // Shard 1 never ran: its cells are absent and the merge must say
    // so rather than seal a partial report.
    Result<std::vector<SimResult>> merged =
        mergeShards(spec, job_dir, 2);
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error().code, Errc::Corrupt);
}

TEST(ServeProtocol, JobKeysValidatedAgainstTraversal)
{
    EXPECT_TRUE(validJobKey("deadbeefdeadbeef"));
    EXPECT_TRUE(validJobKey(jobKey(smallSpec())));
    EXPECT_FALSE(validJobKey(""));
    EXPECT_FALSE(validJobKey("DEADBEEFDEADBEEF")); // not canonical
    EXPECT_FALSE(validJobKey("deadbeefdeadbee"));  // 15 chars
    EXPECT_FALSE(validJobKey("deadbeefdeadbeef0")); // 17 chars
    EXPECT_FALSE(validJobKey("../../etc/passwd"));
    EXPECT_FALSE(validJobKey(std::string("deadbeef\0deadbee", 16)));

    // The same gate applied at request parse time: a key is spliced
    // into filesystem paths, so traversal shapes (including
    // JSON-escaped NULs that would truncate the appended
    // /result.json) must be rejected before they reach the queue.
    for (const char *line :
         {"{\"op\":\"result\",\"job\":\"../../../etc/passwd\"}",
          "{\"op\":\"subscribe\",\"job\":\"../../../etc/passwd\"}",
          "{\"op\":\"result\",\"job\":"
          "\"..\\u0000..aaaaaaaaaaaa\"}",
          "{\"op\":\"result\",\"job\":\"DEADBEEFDEADBEEF\"}"}) {
        EXPECT_FALSE(parseRequest(line).ok()) << line;
    }
}

TEST(JobQueueTest, MalformedKeysNeverReachTheFilesystem)
{
    const std::string dir = makeTempDir();
    JobQueue queue;
    ASSERT_TRUE(queue.open(dir).ok());

    // Plant a result file where a traversal key would land if it were
    // spliced into sealedPath (dir/jobs/../planted/result.json); the
    // queue must refuse the key rather than find the file.
    ASSERT_EQ(::mkdir((dir + "/planted").c_str(), 0775), 0);
    ASSERT_TRUE(
        writeFileAtomic(dir + "/planted/result.json", "[]").ok());
    EXPECT_FALSE(queue.hasSealed("../planted"));
    Result<std::string> loaded = queue.loadSealed("../planted");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, Errc::InvalidArgument);
}

// --- line channel -----------------------------------------------------

TEST(LineChannelTest, BlockingFdChunkBoundaryDoesNotHang)
{
    // readLines reads in 4096-byte chunks and uses "short read" as
    // its drained heuristic. A payload that is an exact multiple of
    // the chunk size used to trigger one read too many — fatal on a
    // blocking fd (the cbws-ctl Connection shape), where that extra
    // read blocks forever despite complete lines being buffered.
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    std::string payload(4095, 'x');
    payload.push_back('\n');
    ASSERT_EQ(::write(sv[1], payload.data(), payload.size()),
              static_cast<ssize_t>(payload.size()));

    ::alarm(30); // a regression hangs; die loudly instead
    LineChannel channel(sv[0]);
    std::vector<std::string> lines;
    Result<void> read = channel.readLines(lines);
    ASSERT_TRUE(read.ok()) << read.error().str();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], std::string(4095, 'x'));

    // Two exact chunks: the second line must still be retrievable on
    // the next call, nothing stranded in the buffer.
    ASSERT_EQ(::write(sv[1], payload.data(), payload.size()),
              static_cast<ssize_t>(payload.size()));
    ASSERT_EQ(::write(sv[1], payload.data(), payload.size()),
              static_cast<ssize_t>(payload.size()));
    lines.clear();
    while (lines.size() < 2) {
        Result<void> more = channel.readLines(lines);
        ASSERT_TRUE(more.ok()) << more.error().str();
    }
    EXPECT_EQ(lines.size(), 2u);
    ::alarm(0);
    ::close(sv[0]);
    ::close(sv[1]);
}

// --- supervisor -------------------------------------------------------

std::uint64_t
monoMs()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

TEST(ServeSupervisor, StrayWorkerTermRespawnsInsteadOfHanging)
{
    // A SIGTERM delivered straight to a worker (not via stop()) makes
    // it seal its shard and exit 130. The supervisor is NOT stopping,
    // so it must classify that as a crash and respawn the shard;
    // treating it as a graceful drain would leave the job unfinished
    // forever.
    JobSpec spec = smallSpec();
    spec.insts = 60000;
    const std::string job_dir = makeTempDir();

    Supervisor supervisor;
    Supervisor::Options options;
    options.numWorkers = 1;
    options.backoff.baseMs = 1;
    options.backoff.maxMs = 2;
    Result<void> started =
        supervisor.start(spec, job_dir, options, monoMs());
    ASSERT_TRUE(started.ok()) << started.error().str();

    bool termed = false;
    bool sawCrash = false;
    bool sawDrain = false;
    const std::uint64_t deadline = monoMs() + 60000;
    while (supervisor.active() && !supervisor.finished() &&
           !supervisor.failed()) {
        ASSERT_LT(monoMs(), deadline) << "job never finished: the "
                                         "interrupted shard was not "
                                         "respawned";
        for (const auto &ev : supervisor.pump(monoMs(), true)) {
            if (ev.kind == Supervisor::Event::Kind::Cell && !termed) {
                // First progress line: the worker is mid-matrix with
                // its SIGTERM handler long installed. Interrupt it.
                ::kill(ev.pid, SIGTERM);
                termed = true;
            }
            if (ev.kind == Supervisor::Event::Kind::Crashed)
                sawCrash = true;
            if (ev.kind == Supervisor::Event::Kind::Drained)
                sawDrain = true;
        }
        ::usleep(2000);
    }
    EXPECT_TRUE(termed);
    EXPECT_TRUE(supervisor.finished());
    EXPECT_FALSE(supervisor.failed());
    EXPECT_FALSE(sawDrain) << "exit while not stopping was "
                              "misclassified as a graceful drain";
    // SIGTERMed right after its first cell with three still to go,
    // the worker exits 130 mid-matrix — which must surface as a
    // Crashed event (and hence a respawn), never silence.
    EXPECT_TRUE(sawCrash);
    supervisor.killAll();
    supervisor.clear();
}

TEST(ServeWorker, SingleShardEqualsSerial)
{
    JobSpec spec = smallSpec();
    spec.workloads = {"nw"};
    Result<std::vector<SimResult>> serial = runJobSerial(spec);
    ASSERT_TRUE(serial.ok());

    const std::string job_dir = makeTempDir();
    ASSERT_EQ(runWorkerShard(spec, job_dir, 0, 1, -1), 0);
    Result<std::vector<SimResult>> merged =
        mergeShards(spec, job_dir, 1);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(resultJson(merged.value()),
              resultJson(serial.value()));
}

} // namespace
} // namespace serve
} // namespace cbws
