/**
 * @file
 * Unit tests for the PC-indexed stride prefetcher.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "prefetch/stride.hh"
#include "test_util.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

TEST(Stride, LearnsConstantStride)
{
    StridePrefetcher pf;
    MockSink sink;
    const Addr pc = 0x400;
    // Line stride of 2 (128-byte element stride).
    for (int i = 0; i < 6; ++i)
        pf.observeAccess(memCtx(pc, i * 128ull), sink);
    EXPECT_FALSE(sink.issued.empty());
    // Prefetches continue the stride from the latest line.
    const LineAddr last = lineOf(5 * 128);
    EXPECT_TRUE(sink.wasIssued(last + 2));
    EXPECT_TRUE(sink.wasIssued(last + 4));
}

TEST(Stride, DegreeBoundsPrefetchCount)
{
    StrideParams params;
    params.degree = 3;
    StridePrefetcher pf(params);
    MockSink sink;
    for (int i = 0; i < 4; ++i)
        pf.observeAccess(memCtx(0x400, i * 64ull), sink);
    sink.issued.clear();
    pf.observeAccess(memCtx(0x400, 4 * 64ull), sink);
    EXPECT_EQ(sink.issued.size(), 3u);
}

TEST(Stride, NoPrefetchOnUnstableStride)
{
    StridePrefetcher pf;
    MockSink sink;
    Random rng(2);
    for (int i = 0; i < 40; ++i)
        pf.observeAccess(memCtx(0x400, rng.below(1 << 26) * 64), sink);
    // Random deltas never build confidence.
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Stride, SeparateStreamsPerPc)
{
    StridePrefetcher pf;
    MockSink sink;
    for (int i = 0; i < 6; ++i) {
        pf.observeAccess(memCtx(0x400, i * 64ull), sink);
        pf.observeAccess(memCtx(0x500, 0x800000 + i * 256ull), sink);
    }
    EXPECT_TRUE(sink.wasIssued(lineOf(5 * 64) + 1));
    EXPECT_TRUE(sink.wasIssued(lineOf(0x800000 + 5 * 256) + 4));
}

TEST(Stride, TrainsOnMissesOnly)
{
    StridePrefetcher pf;
    MockSink sink;
    for (int i = 0; i < 8; ++i) {
        pf.observeAccess(memCtx(0x400, i * 64ull, false, true,
                                /*l2_miss=*/false),
                         sink);
    }
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Stride, SkipsCachedTargets)
{
    StridePrefetcher pf;
    MockSink sink;
    for (LineAddr l = 0; l < 64; ++l)
        sink.cached.insert(l);
    for (int i = 0; i < 8; ++i)
        pf.observeAccess(memCtx(0x400, i * 64ull), sink);
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Stride, TableEvictionBounded)
{
    StrideParams params;
    params.tableEntries = 4;
    StridePrefetcher pf(params);
    MockSink sink;
    // Touch many PCs; the table must keep working (LRU eviction) and
    // relearn streams after eviction without crashing.
    for (int round = 0; round < 3; ++round)
        for (Addr pc = 0; pc < 16; ++pc)
            pf.observeAccess(memCtx(0x400 + pc * 4, pc * 1 << 20),
                             sink);
    SUCCEED();
}

TEST(Stride, StorageMatchesTable3)
{
    StridePrefetcher pf;
    // Table III: (48 + 2*12) * 256 bits = 2.25 KB.
    EXPECT_EQ(pf.storageBits(), (48u + 24u) * 256u);
    EXPECT_EQ(pf.storageBits() / 8 / 1024.0, 2.25);
}

TEST(Stride, ZeroStrideNeverPrefetches)
{
    StridePrefetcher pf;
    MockSink sink;
    for (int i = 0; i < 10; ++i)
        pf.observeAccess(memCtx(0x400, 0x1000), sink);
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Stride, NegativeStrideSupported)
{
    StridePrefetcher pf;
    MockSink sink;
    for (int i = 10; i >= 0; --i)
        pf.observeAccess(memCtx(0x400, i * 64ull), sink);
    EXPECT_FALSE(sink.issued.empty());
}

} // anonymous namespace
} // namespace cbws
