/**
 * @file
 * Unit tests for the out-of-order core: width limits, dependency
 * scheduling, memory-level parallelism, forwarding, mispredict
 * handling and the commit/access hooks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.hh"
#include "mem/hierarchy.hh"

namespace cbws
{
namespace
{

Trace
independentAlus(std::size_t n)
{
    Trace t;
    for (std::size_t i = 0; i < n; ++i) {
        t.append(TraceRecord::alu(0x400000 + (i % 8) * 4,
                                  static_cast<RegIndex>(8 + i % 16)));
    }
    return t;
}

TEST(Core, WidthLimitsIndependentAlus)
{
    HierarchyParams hp;
    Hierarchy mem(hp);
    CoreParams cp;
    OooCore core(cp, mem);
    auto st = core.run(independentAlus(4000), 4000);
    EXPECT_EQ(st.instructions, 4000u);
    // 4-wide core: IPC approaches 4 minus pipeline fill and the
    // initial I-cache miss.
    EXPECT_GT(st.ipc(), 2.8);
    EXPECT_LE(st.ipc(), 4.0);
}

TEST(Core, DependencyChainSerialises)
{
    Trace t;
    for (int i = 0; i < 8000; ++i)
        t.append(TraceRecord::alu(0x400000, 5, 5));
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    auto st = core.run(t, 8000);
    // One dependent ALU per cycle (plus the initial I-cache miss).
    EXPECT_NEAR(st.ipc(), 1.0, 0.08);
}

TEST(Core, RegisterReuseDoesNotFalseSerialise)
{
    // Independent loads that all write the same architectural
    // register: renaming must keep them parallel (MLP = L1 MSHRs).
    Trace t;
    const std::size_t n = 256;
    for (std::size_t i = 0; i < n; ++i)
        t.append(TraceRecord::load(0x400000, 0x1000000 + i * 64, 3));
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    auto st = core.run(t, n);
    const double expected =
        static_cast<double>(n) / hp.l1d.mshrs *
        (hp.l1d.latency + hp.l2.latency + hp.dramLatency);
    EXPECT_LT(st.cycles, expected * 1.25);
    EXPECT_GT(st.cycles, expected * 0.75);
}

TEST(Core, LoadLatencyGatesDependent)
{
    Trace t;
    t.append(TraceRecord::load(0x400000, 0x1000000, 3));
    t.append(TraceRecord::alu(0x400004, 4, 3));
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    auto st = core.run(t, 2);
    // Two instructions cannot finish before the miss resolves.
    EXPECT_GE(st.cycles,
              hp.l1d.latency + hp.l2.latency + hp.dramLatency);
}

TEST(Core, StoreToLoadForwarding)
{
    Trace t;
    // Store then load to the same line: the load must not go to DRAM.
    t.append(TraceRecord::alu(0x400000, 3));
    t.append(TraceRecord::store(0x400004, 0x2000000, 3));
    t.append(TraceRecord::load(0x400008, 0x2000000, 4));
    for (int i = 0; i < 20; ++i)
        t.append(TraceRecord::alu(0x40000c, 5, 4));
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    auto st = core.run(t, t.size());
    // One I-cache fill (~334 cycles) but no data-side DRAM access.
    EXPECT_LT(st.cycles, 2 * hp.dramLatency);
    // Only the store itself reaches the L2 (write-allocate); the
    // forwarded load never does.
    EXPECT_LE(mem.stats().demandL2Accesses, 1u);
}

TEST(Core, MispredictsCostCycles)
{
    auto run_with = [](bool predictable) {
        Trace t;
        std::uint64_t x = 123456789;
        for (int i = 0; i < 2000; ++i) {
            t.append(TraceRecord::alu(0x400000, 3));
            bool taken;
            if (predictable) {
                taken = true;
            } else {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                taken = (x & 1) != 0;
            }
            t.append(TraceRecord::branch(0x400004, taken, 0x400000));
        }
        HierarchyParams hp;
        Hierarchy mem(hp);
        OooCore core(CoreParams(), mem);
        return core.run(t, t.size());
    };
    auto predictable = run_with(true);
    auto random = run_with(false);
    EXPECT_GT(random.branchMispredicts,
              predictable.branchMispredicts * 10);
    EXPECT_GT(random.cycles, predictable.cycles * 2);
}

TEST(Core, MarkersAreTransparent)
{
    Trace plain, marked;
    for (int i = 0; i < 500; ++i) {
        if (i % 5 == 0)
            marked.append(TraceRecord::blockBegin(0x400000, 1));
        plain.append(TraceRecord::alu(0x400004, 3));
        marked.append(TraceRecord::alu(0x400004, 3));
        if (i % 5 == 4)
            marked.append(TraceRecord::blockEnd(0x400008, 1));
    }
    HierarchyParams hp;
    Hierarchy mem1(hp), mem2(hp);
    OooCore c1(CoreParams(), mem1), c2(CoreParams(), mem2);
    auto s_plain = c1.run(plain, plain.size());
    auto s_marked = c2.run(marked, marked.size());
    // Markers add commit slots but no execution latency: cycle counts
    // stay within the width-induced overhead.
    EXPECT_LT(s_marked.cycles, s_plain.cycles * 1.3 + 20);
}

TEST(Core, CommitHookSeesProgramOrder)
{
    Trace t;
    for (int i = 0; i < 100; ++i) {
        t.append(TraceRecord::load(0x400000 + i * 4,
                                   0x1000000 + (99 - i) * 6400,
                                   static_cast<RegIndex>(8 + i % 8)));
    }
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    std::vector<Addr> pcs;
    core.run(t, t.size(),
             [&](const TraceRecord &rec, const AccessOutcome &, Cycle) {
                 pcs.push_back(rec.pc);
             });
    ASSERT_EQ(pcs.size(), 100u);
    for (std::size_t i = 0; i < pcs.size(); ++i)
        EXPECT_EQ(pcs[i], 0x400000u + i * 4);
}

TEST(Core, AccessHookFiresForLoadsAndStores)
{
    Trace t;
    t.append(TraceRecord::load(0x400000, 0x1000000, 3));
    t.append(TraceRecord::store(0x400004, 0x1004000, 3));
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    unsigned loads = 0, stores = 0;
    core.run(t, 2, nullptr,
             [&](const TraceRecord &rec, const AccessOutcome &, Cycle) {
                 if (rec.cls == InstClass::Load)
                     ++loads;
                 else if (rec.cls == InstClass::Store)
                     ++stores;
             });
    EXPECT_EQ(loads, 1u);
    EXPECT_EQ(stores, 1u);
}

TEST(Core, LoopCycleAttribution)
{
    // All work inside annotated blocks -> loop fraction ~1.
    Trace t;
    for (int i = 0; i < 300; ++i) {
        t.append(TraceRecord::blockBegin(0x400000, 1));
        for (int k = 0; k < 4; ++k)
            t.append(TraceRecord::alu(0x400004 + k * 4, 5, 5));
        t.append(TraceRecord::blockEnd(0x400014, 1));
    }
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    auto st = core.run(t, t.size());
    EXPECT_GT(st.loopFraction(), 0.9);

    // No markers at all -> loop fraction 0.
    HierarchyParams hp2;
    Hierarchy mem2(hp2);
    OooCore core2(CoreParams(), mem2);
    auto st2 = core2.run(independentAlus(1000), 1000);
    EXPECT_DOUBLE_EQ(st2.loopFraction(), 0.0);
}

TEST(Core, WarmupDiscardsEarlyStats)
{
    // First half: slow dependent chain. Second half: wide ALUs.
    Trace t;
    for (int i = 0; i < 1000; ++i)
        t.append(TraceRecord::alu(0x400000, 5, 5));
    for (int i = 0; i < 1000; ++i)
        t.append(TraceRecord::alu(0x400004 + (i % 8) * 4,
                                  static_cast<RegIndex>(8 + i % 16)));
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    bool warm_fired = false;
    auto st = core.run(t, 2000, nullptr, nullptr, 1000,
                       [&](Cycle) { warm_fired = true; });
    EXPECT_TRUE(warm_fired);
    EXPECT_EQ(st.instructions, 1000u);
    // Measured region is the wide phase only.
    EXPECT_GT(st.ipc(), 2.5);
}

TEST(Core, StopsAtInstructionBudget)
{
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    auto st = core.run(independentAlus(5000), 1234);
    EXPECT_EQ(st.instructions, 1234u);
}

TEST(Core, EmptyTrace)
{
    HierarchyParams hp;
    Hierarchy mem(hp);
    OooCore core(CoreParams(), mem);
    Trace t;
    auto st = core.run(t, 100);
    EXPECT_EQ(st.instructions, 0u);
}

} // anonymous namespace
} // namespace cbws
