/**
 * @file
 * Unit tests for the integrated CBWS+SMS prefetcher: the fallback
 * policy ("CBWS issues only on a history-table hit; otherwise SMS
 * issues") and storage accounting.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "prefetch/composite.hh"
#include "test_util.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

TEST(CbwsSms, SmsActsOutsideBlocks)
{
    CbwsSmsPrefetcher pf;
    MockSink sink;
    // Train SMS outside any block.
    SmsParams sp;
    // (default params; just drive accesses)
    for (unsigned off : {0u, 3u})
        pf.observeAccess(memCtx(0x400, 10 * 2048 + off * 64), sink);
    for (std::uint64_t r : {20ull, 30ull, 40ull}) {
        for (unsigned off : {0u, 1u}) {
            pf.observeAccess(memCtx(0x900, r * 2048 + off * 64),
                             sink);
        }
    }
    // Enough generations (from a different trigger PC, so region
    // 10's PHT entry survives) evict region 10's pattern into the
    // PHT (AGT default is 32 entries, so force more regions).
    for (std::uint64_t r = 50; r < 90; ++r)
        for (unsigned off : {0u, 1u})
            pf.observeAccess(memCtx(0x900, r * 2048 + off * 64),
                             sink);
    sink.issued.clear();
    pf.observeAccess(memCtx(0x400, 200 * 2048), sink);
    EXPECT_TRUE(sink.wasIssued(lineOf(200 * 2048 + 3 * 64)));
}

TEST(CbwsSms, CbwsPredictsInsideConfidentBlocks)
{
    CbwsSmsPrefetcher pf;
    MockSink sink;
    for (unsigned b = 0; b < 24; ++b) {
        pf.blockBegin(1, sink);
        pf.observeCommit(memCtx(0x400, (1000 + b * 4ull) * 64), sink);
        pf.blockEnd(1, sink);
    }
    EXPECT_TRUE(pf.cbws().lastBlockPredicted());
    EXPECT_TRUE(sink.wasIssued(1000 + 24ull * 4));
}

TEST(CbwsSms, SmsMutedWhileCbwsConfident)
{
    CbwsSmsPrefetcher pf;
    MockSink sink;
    // Make CBWS confident on a trivial repeating block.
    for (unsigned b = 0; b < 24; ++b) {
        pf.blockBegin(1, sink);
        pf.observeCommit(memCtx(0x700, (5000 + b * 4ull) * 64), sink);
        pf.blockEnd(1, sink);
    }
    ASSERT_TRUE(pf.cbws().lastBlockPredicted());
    const auto suppressed_before = pf.suppressedSmsIssues();

    // Now, inside a confident block, drive accesses that would make
    // SMS issue (a previously learned trigger would be required;
    // instead we verify via the suppression counter that gated SMS
    // issues are counted, not forwarded).
    pf.blockBegin(1, sink);
    // Train + trigger SMS within the block across many regions; any
    // issue SMS attempts while muted increments the counter.
    for (std::uint64_t r = 300; r < 340; ++r)
        for (unsigned off : {0u, 1u})
            pf.observeAccess(memCtx(0x900, r * 2048 + off * 64),
                             sink);
    sink.issued.clear();
    pf.observeAccess(memCtx(0x900, 400 * 2048), sink);
    pf.observeAccess(memCtx(0x900, 401 * 2048), sink);
    // Either SMS had nothing to issue, or its issues were suppressed
    // — but nothing may reach the sink from SMS while muted.
    EXPECT_GE(pf.suppressedSmsIssues(), suppressed_before);
    for (LineAddr l : sink.issued) {
        // Any line issued inside the block must come from CBWS's
        // stream (around line 5000), not SMS regions (~12800+).
        EXPECT_LT(l, 10000u);
    }
}

TEST(CbwsSms, FallsBackWhenCbwsCannotPredict)
{
    CbwsSmsPrefetcher pf;
    MockSink sink;
    Random rng(3);
    // Random blocks: CBWS never becomes confident.
    for (unsigned b = 0; b < 30; ++b) {
        pf.blockBegin(2, sink);
        pf.observeCommit(
            memCtx(0x400, rng.below(1 << 26) * 64), sink);
        pf.blockEnd(2, sink);
    }
    EXPECT_FALSE(pf.cbws().lastBlockPredicted());
    // SMS trains/issues normally (not muted).
    pf.blockBegin(2, sink);
    for (std::uint64_t r = 10; r < 60; ++r)
        for (unsigned off : {0u, 5u})
            pf.observeAccess(memCtx(0xAAA, r * 2048 + off * 64),
                             sink);
    sink.issued.clear();
    pf.observeAccess(memCtx(0xAAA, 100 * 2048), sink);
    EXPECT_TRUE(sink.wasIssued(lineOf(100 * 2048 + 5 * 64)));
}

TEST(CbwsSms, StorageIsSumOfComponents)
{
    CbwsSmsPrefetcher pf;
    CbwsPrefetcher cbws;
    SmsPrefetcher sms;
    EXPECT_EQ(pf.storageBits(),
              cbws.storageBits() + sms.storageBits());
}

TEST(CbwsSms, Name)
{
    EXPECT_EQ(CbwsSmsPrefetcher().name(), "CBWS+SMS");
}

} // anonymous namespace
} // namespace cbws
