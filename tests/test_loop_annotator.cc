/**
 * @file
 * Unit tests for the automatic loop annotator (the trace-level stand-
 * in for the paper's LLVM annotation pass).
 */

#include <gtest/gtest.h>

#include "trace/loop_annotator.hh"

namespace cbws
{
namespace
{

/** Emit @p iters iterations of a simple counted loop. */
void
emitLoop(Trace &t, Addr header, unsigned body_insts, unsigned iters,
         Addr data_base = 0x1000000)
{
    for (unsigned i = 0; i < iters; ++i) {
        Addr pc = header;
        for (unsigned b = 0; b < body_insts; ++b, pc += 4) {
            t.append(TraceRecord::load(pc, data_base + i * 64 + b * 8,
                                       3, 1));
        }
        t.append(TraceRecord::branch(pc, i + 1 < iters, header, 2));
    }
}

TEST(LoopAnnotator, DetectsSimpleLoop)
{
    Trace t;
    emitLoop(t, 0x400000, 3, 20);
    LoopAnnotator ann;
    Trace out = ann.annotate(t);
    ASSERT_EQ(ann.loops().size(), 1u);
    EXPECT_EQ(ann.loops()[0].headerPc, 0x400000u);
    EXPECT_EQ(out.countClass(InstClass::BlockBegin), 20u);
    EXPECT_EQ(out.countClass(InstClass::BlockEnd), 20u);
}

TEST(LoopAnnotator, MarkersWrapEachIteration)
{
    Trace t;
    emitLoop(t, 0x400000, 2, 5);
    LoopAnnotator ann;
    Trace out = ann.annotate(t);
    // Structure: BEGIN, body..., branch, END, repeated.
    int depth = 0;
    for (const auto &rec : out) {
        if (rec.cls == InstClass::BlockBegin) {
            EXPECT_EQ(depth, 0);
            ++depth;
        } else if (rec.cls == InstClass::BlockEnd) {
            EXPECT_EQ(depth, 1);
            --depth;
        }
    }
    EXPECT_EQ(depth, 0);
}

TEST(LoopAnnotator, OnlyInnermostAnnotated)
{
    // Outer loop (header 0x400000) containing an inner loop (header
    // 0x400010): only the inner one is tight & innermost.
    Trace t;
    const Addr outer_header = 0x400000;
    const Addr inner_header = 0x400010;
    for (unsigned o = 0; o < 6; ++o) {
        // Outer body prologue.
        for (unsigned b = 0; b < 4; ++b) {
            t.append(
                TraceRecord::alu(outer_header + b * 4, 3, 3));
        }
        // Inner loop.
        for (unsigned i = 0; i < 10; ++i) {
            t.append(TraceRecord::load(inner_header,
                                       0x1000000 + i * 64, 3, 1));
            t.append(TraceRecord::branch(inner_header + 4,
                                         i + 1 < 10, inner_header,
                                         2));
        }
        t.append(TraceRecord::branch(inner_header + 8, o + 1 < 6,
                                     outer_header, 2));
    }
    LoopAnnotator ann;
    Trace out = ann.annotate(t);
    ASSERT_EQ(ann.loops().size(), 1u);
    EXPECT_EQ(ann.loops()[0].headerPc, inner_header);
    EXPECT_EQ(out.countClass(InstClass::BlockBegin), 60u);
}

TEST(LoopAnnotator, LargeBodiesNotTight)
{
    Trace t;
    emitLoop(t, 0x400000, 200, 20); // body > maxBodyInsts (64)
    LoopAnnotator ann;
    Trace out = ann.annotate(t);
    EXPECT_TRUE(ann.loops().empty());
    EXPECT_EQ(out.countClass(InstClass::BlockBegin), 0u);
    EXPECT_EQ(out.size(), t.size());
}

TEST(LoopAnnotator, ColdLoopsIgnored)
{
    Trace t;
    emitLoop(t, 0x400000, 3, 2); // below minIterations (4)
    LoopAnnotator ann;
    ann.annotate(t);
    EXPECT_TRUE(ann.loops().empty());
}

TEST(LoopAnnotator, TightnessThresholdConfigurable)
{
    Trace t;
    emitLoop(t, 0x400000, 100, 10);
    LoopAnnotator::Params p;
    p.maxBodyInsts = 128;
    LoopAnnotator ann(p);
    ann.annotate(t);
    EXPECT_EQ(ann.loops().size(), 1u);
}

TEST(LoopAnnotator, DistinctLoopsGetDistinctIds)
{
    Trace t;
    emitLoop(t, 0x400000, 3, 10, 0x1000000);
    emitLoop(t, 0x500000, 3, 10, 0x2000000);
    LoopAnnotator ann;
    Trace out = ann.annotate(t);
    ASSERT_EQ(ann.loops().size(), 2u);
    EXPECT_NE(ann.loops()[0].id, ann.loops()[1].id);
    // Iteration counts recorded per loop (taken back-branches).
    EXPECT_EQ(ann.loops()[0].iterations, 9u);
}

TEST(LoopAnnotator, RefusesPreAnnotatedInput)
{
    Trace t;
    t.append(TraceRecord::blockBegin(0x400000, 0));
    LoopAnnotator ann;
    EXPECT_DEATH({ ann.annotate(t); }, "already contains");
}

TEST(LoopAnnotator, PreservesOriginalRecords)
{
    Trace t;
    emitLoop(t, 0x400000, 3, 8);
    LoopAnnotator ann;
    Trace out = ann.annotate(t);
    // Every original record appears, in order, in the output.
    std::size_t j = 0;
    for (const auto &rec : out) {
        if (isBlockMarker(rec.cls))
            continue;
        ASSERT_LT(j, t.size());
        EXPECT_EQ(rec.pc, t[j].pc);
        EXPECT_EQ(rec.cls, t[j].cls);
        ++j;
    }
    EXPECT_EQ(j, t.size());
}

TEST(LoopAnnotator, BranchyBodyStillOneBlockPerIteration)
{
    // Iteration contains a forward conditional branch: the block must
    // still span the whole iteration.
    Trace t;
    const Addr header = 0x400000;
    for (unsigned i = 0; i < 12; ++i) {
        t.append(TraceRecord::load(header, 0x1000000 + i * 64, 3, 1));
        const bool skip = i % 2 == 0;
        t.append(TraceRecord::branch(header + 4, skip, header + 12,
                                     3));
        if (!skip)
            t.append(TraceRecord::alu(header + 8, 4, 3));
        t.append(TraceRecord::branch(header + 12, i + 1 < 12, header,
                                     2));
    }
    LoopAnnotator ann;
    Trace out = ann.annotate(t);
    ASSERT_EQ(ann.loops().size(), 1u);
    EXPECT_EQ(out.countClass(InstClass::BlockBegin), 12u);
    EXPECT_EQ(out.countClass(InstClass::BlockEnd), 12u);
}

} // anonymous namespace
} // namespace cbws
