/**
 * @file
 * Unit tests for the command-line argument parser used by the tools.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/argparse.hh"

namespace cbws
{
namespace
{

bool
parseWith(ArgParser &parser, std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return parser.parse(static_cast<int>(args.size()),
                        const_cast<char **>(args.data()));
}

TEST(ArgParser, DefaultsApply)
{
    ArgParser p("prog", "test");
    p.addOption("workload", "w", "stencil-default");
    p.addOption("insts", "n", "1000");
    EXPECT_TRUE(parseWith(p, {}));
    EXPECT_EQ(p.get("workload"), "stencil-default");
    EXPECT_EQ(p.getUint("insts"), 1000u);
    EXPECT_FALSE(p.provided("workload"));
}

TEST(ArgParser, SpaceSeparatedValues)
{
    ArgParser p("prog", "test");
    p.addOption("workload", "w", "a");
    EXPECT_TRUE(parseWith(p, {"--workload", "nw"}));
    EXPECT_EQ(p.get("workload"), "nw");
    EXPECT_TRUE(p.provided("workload"));
}

TEST(ArgParser, EqualsSeparatedValues)
{
    ArgParser p("prog", "test");
    p.addOption("insts", "n", "0");
    EXPECT_TRUE(parseWith(p, {"--insts=5000"}));
    EXPECT_EQ(p.getUint("insts"), 5000u);
}

TEST(ArgParser, Flags)
{
    ArgParser p("prog", "test");
    p.addFlag("csv", "c");
    EXPECT_TRUE(parseWith(p, {"--csv"}));
    EXPECT_TRUE(p.getFlag("csv"));

    ArgParser q("prog", "test");
    q.addFlag("csv", "c");
    EXPECT_TRUE(parseWith(q, {}));
    EXPECT_FALSE(q.getFlag("csv"));
}

TEST(ArgParser, FlagRejectsValue)
{
    ArgParser p("prog", "test");
    p.addFlag("csv", "c");
    EXPECT_FALSE(parseWith(p, {"--csv=yes"}));
}

TEST(ArgParser, UnknownOptionRejected)
{
    ArgParser p("prog", "test");
    EXPECT_FALSE(parseWith(p, {"--nope"}));
}

TEST(ArgParser, MissingValueRejected)
{
    ArgParser p("prog", "test");
    p.addOption("insts", "n", "0");
    EXPECT_FALSE(parseWith(p, {"--insts"}));
}

TEST(ArgParser, Positionals)
{
    ArgParser p("prog", "test");
    p.addOption("x", "x", "");
    EXPECT_TRUE(parseWith(p, {"alpha", "--x", "1", "beta"}));
    ASSERT_EQ(p.positionals().size(), 2u);
    EXPECT_EQ(p.positionals()[0], "alpha");
    EXPECT_EQ(p.positionals()[1], "beta");
}

TEST(ArgParser, BadUintFallsBack)
{
    ArgParser p("prog", "test");
    p.addOption("insts", "n", "abc");
    EXPECT_TRUE(parseWith(p, {}));
    EXPECT_EQ(p.getUint("insts", 77), 77u);
}

TEST(ArgParser, HelpGenerated)
{
    ArgParser p("prog", "my description");
    p.addOption("workload", "which benchmark", "nw");
    p.addFlag("csv", "csv output");
    const std::string usage = p.usage();
    EXPECT_NE(usage.find("my description"), std::string::npos);
    EXPECT_NE(usage.find("--workload"), std::string::npos);
    EXPECT_NE(usage.find("default: nw"), std::string::npos);
    EXPECT_NE(usage.find("--csv"), std::string::npos);

    EXPECT_TRUE(parseWith(p, {"--help"}));
    EXPECT_TRUE(p.helpRequested());
}

} // anonymous namespace
} // namespace cbws
