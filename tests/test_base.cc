/**
 * @file
 * Unit tests for the base utilities: address helpers, the RNG, the
 * statistics containers and the table renderer.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/types.hh"

namespace cbws
{
namespace
{

TEST(Types, LineArithmetic)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 1u);
    EXPECT_EQ(lineOf(0x1000), 0x40u);
    EXPECT_EQ(lineBase(1), 64u);
    EXPECT_EQ(lineBase(lineOf(0x12345678)), 0x12345640u);
    EXPECT_EQ(lineOffset(0x12345678), 0x38u);
}

TEST(Types, LineRoundTrip)
{
    for (Addr a : {Addr(0), Addr(1), Addr(63), Addr(64), Addr(65),
                   Addr(0xdeadbeef), Addr(~0ull)}) {
        EXPECT_LE(lineBase(lineOf(a)), a);
        EXPECT_LT(a - lineBase(lineOf(a)), LineBytes);
    }
}

TEST(Types, PowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2((1ull << 35) + 5), 35u);
}

TEST(Random, Deterministic)
{
    Random a(123), b(123), c(124);
    bool all_equal = true;
    bool any_diff_seed = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        all_equal = all_equal && va == b.next();
        any_diff_seed = any_diff_seed || va != c.next();
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed);
}

TEST(Random, BelowRespectsBound)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Random r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, ChanceApproximatesProbability)
{
    Random r(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RunningStat, Summary)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,inf)
    h.sample(0.0);
    h.sample(9.99);
    h.sample(10.0);
    h.sample(25.0);
    h.sample(1000.0); // overflow -> last bucket
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.cdfAt(3), 1.0);
    EXPECT_NEAR(h.cdfAt(0), 0.4, 1e-9);
}

TEST(FrequencyCounter, CoverageCurveIsMonotone)
{
    FrequencyCounter fc;
    // Skewed: key 1 dominates.
    for (int i = 0; i < 90; ++i)
        fc.sample(1);
    for (int i = 0; i < 5; ++i)
        fc.sample(2);
    for (std::uint64_t k = 3; k < 8; ++k)
        fc.sample(k);
    EXPECT_EQ(fc.distinct(), 7u);
    EXPECT_EQ(fc.total(), 100u);
    const auto curve = fc.coverageCurve();
    ASSERT_EQ(curve.size(), 7u);
    EXPECT_NEAR(curve[0], 0.90, 1e-9);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i], curve[i - 1]);
    EXPECT_NEAR(curve.back(), 1.0, 1e-9);
}

TEST(FrequencyCounter, SkewStatistic)
{
    FrequencyCounter fc;
    // One key covers 90% of samples; covering 0.9 needs 1/7 of keys.
    for (int i = 0; i < 90; ++i)
        fc.sample(42);
    for (std::uint64_t k = 0; k < 6; ++k)
        fc.sample(k + 100, 2);
    EXPECT_NEAR(fc.vectorsFractionForCoverage(0.85), 1.0 / 7.0, 1e-9);
    EXPECT_NEAR(fc.vectorsFractionForCoverage(1.0), 1.0, 1e-9);
}

TEST(FrequencyCounter, EmptyIsSafe)
{
    FrequencyCounter fc;
    EXPECT_TRUE(fc.coverageCurve().empty());
    EXPECT_DOUBLE_EQ(fc.vectorsFractionForCoverage(0.5), 0.0);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer-name", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Every line of the table body should place the second column at
    // the same offset.
    const auto first_nl = out.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
    EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}

TEST(Logging, VformatBasics)
{
    EXPECT_EQ(vformat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(vformat("plain"), "plain");
}

} // anonymous namespace
} // namespace cbws
