/**
 * @file
 * Tests for the top-level simulation driver and experiment runner.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

TEST(Config, PrefetcherNames)
{
    EXPECT_STREQ(toString(PrefetcherKind::None), "No-Prefetch");
    EXPECT_STREQ(toString(PrefetcherKind::Sms), "SMS");
    EXPECT_STREQ(toString(PrefetcherKind::CbwsSms), "CBWS+SMS");
    EXPECT_EQ(allPrefetcherKinds().size(), 7u);
}

TEST(Config, MakePrefetcherMatchesKind)
{
    for (PrefetcherKind kind : allPrefetcherKinds()) {
        SystemConfig cfg;
        cfg.prefetcher = kind;
        auto pf = makePrefetcher(cfg);
        ASSERT_NE(pf, nullptr);
        EXPECT_EQ(pf->name(), toString(kind));
    }
}

TEST(Simulate, EndToEndProducesSaneMetrics)
{
    auto w = findWorkload("stencil-default");
    ASSERT_NE(w, nullptr);
    SystemConfig cfg;
    WorkloadParams params;
    params.maxInstructions = 20000;
    SimResult r = simulateWorkload(*w, cfg, params);
    EXPECT_EQ(r.workload, "stencil-default");
    EXPECT_EQ(r.prefetcher, "No-Prefetch");
    EXPECT_EQ(r.core.instructions, params.maxInstructions);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_LE(r.ipc(), 4.0);
    EXPECT_GT(r.mpki(), 0.0);
    EXPECT_GT(r.mem.dramBytesRead, 0u);
    EXPECT_GT(r.core.loopFraction(), 0.5);
}

TEST(Simulate, CbwsCutsStencilMisses)
{
    auto w = findWorkload("stencil-default");
    WorkloadParams params;
    params.maxInstructions = 30000;
    Trace t;
    w->generate(t, params);

    SystemConfig none_cfg, cbws_cfg;
    cbws_cfg.prefetcher = PrefetcherKind::Cbws;
    SimResult none = simulate(t, none_cfg, params.maxInstructions);
    SimResult cbws = simulate(t, cbws_cfg, params.maxInstructions);
    EXPECT_LT(cbws.mpki(), none.mpki() * 0.3);
    EXPECT_GT(cbws.ipc(), none.ipc() * 1.5);
}

TEST(Simulate, DifferentialProbeAttaches)
{
    auto w = findWorkload("stencil-default");
    WorkloadParams params;
    params.maxInstructions = 10000;
    SystemConfig cfg;
    cfg.prefetcher = PrefetcherKind::Cbws;
    FrequencyCounter probe;
    SimProbes probes;
    probes.differentials = &probe;
    simulateWorkload(*w, cfg, params, probes);
    EXPECT_GT(probe.total(), 100u);
    // The stencil's differential distribution is extremely skewed
    // (Fig. 5): very few distinct vectors.
    EXPECT_LT(probe.distinct(), probe.total() / 10);

    // The probe also attaches through the composite.
    FrequencyCounter probe2;
    probes.differentials = &probe2;
    cfg.prefetcher = PrefetcherKind::CbwsSms;
    simulateWorkload(*w, cfg, params, probes);
    EXPECT_GT(probe2.total(), 100u);
}

TEST(Simulate, WarmupReducesColdMisses)
{
    auto w = findWorkload("458.sjeng-ref"); // L2-resident working set
    WorkloadParams params;
    params.maxInstructions = 60000;
    Trace t;
    w->generate(t, params);
    SystemConfig cfg;
    SimResult cold = simulate(t, cfg, params.maxInstructions);
    SimResult warm = simulate(t, cfg, params.maxInstructions,
                              SimProbes(), 30000);
    EXPECT_LT(warm.mpki(), cold.mpki());
}

TEST(Simulate, DeterministicAcrossRuns)
{
    auto w = findWorkload("radix-simlarge");
    WorkloadParams params;
    params.maxInstructions = 15000;
    Trace t;
    w->generate(t, params);
    SystemConfig cfg;
    cfg.prefetcher = PrefetcherKind::CbwsSms;
    SimResult a = simulate(t, cfg, params.maxInstructions);
    SimResult b = simulate(t, cfg, params.maxInstructions);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.mem.llcDemandMisses, b.mem.llcDemandMisses);
    EXPECT_EQ(a.mem.prefetchesIssued, b.mem.prefetchesIssued);
}

TEST(Experiment, MatrixShapeAndLookup)
{
    std::vector<WorkloadPtr> ws;
    ws.push_back(findWorkload("sgemm-medium"));
    ws.push_back(findWorkload("histo-large"));
    const std::vector<PrefetcherKind> kinds = {
        PrefetcherKind::None, PrefetcherKind::Sms,
        PrefetcherKind::CbwsSms};
    SystemConfig cfg;
    auto matrix = runMatrix(ws, kinds, cfg, 12000);
    ASSERT_EQ(matrix.rows.size(), 2u);
    ASSERT_EQ(matrix.rows[0].byPrefetcher.size(), 3u);
    EXPECT_EQ(matrix.result(0, PrefetcherKind::Sms).prefetcher,
              "SMS");
    EXPECT_EQ(matrix.rows[0].workload, "sgemm-medium");
    EXPECT_TRUE(matrix.rows[0].memoryIntensive);

    const double avg_mi = matrix.average(
        [&](const WorkloadRow &row) {
            return row.byPrefetcher[0].ipc();
        },
        /*mi_only=*/true);
    EXPECT_GT(avg_mi, 0.0);
}

TEST(Experiment, BudgetEnvOverride)
{
    unsetenv("CBWS_BENCH_INSTS");
    EXPECT_EQ(benchInstructionBudget(4242), 4242u);
    setenv("CBWS_BENCH_INSTS", "777", 1);
    EXPECT_EQ(benchInstructionBudget(4242), 777u);
    unsetenv("CBWS_BENCH_INSTS");
}

TEST(SimResult, DerivedMetrics)
{
    SimResult r;
    r.core.instructions = 1000;
    r.core.cycles = 2000;
    r.mem.llcDemandMisses = 50;
    r.mem.demandL2Accesses = 100;
    r.mem.classCounts[static_cast<int>(DemandClass::Timely)] = 25;
    r.mem.wrongPrefetches = 10;
    r.mem.dramBytesRead = 6400;
    EXPECT_DOUBLE_EQ(r.ipc(), 0.5);
    EXPECT_DOUBLE_EQ(r.mpki(), 50.0);
    EXPECT_DOUBLE_EQ(r.classFraction(DemandClass::Timely), 0.25);
    EXPECT_DOUBLE_EQ(r.wrongFraction(), 0.10);
    EXPECT_DOUBLE_EQ(r.perfPerByte(), 0.5 / 6400);
}

} // anonymous namespace
} // namespace cbws
