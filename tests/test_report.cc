/**
 * @file
 * Tests for the JSON writer and the SimResult JSON export.
 */

#include <gtest/gtest.h>

#include "base/json.hh"
#include "sim/report.hh"
#include "sim/statsdump.hh"

#include <sstream>
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

TEST(JsonWriter, FlatObject)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", "x");
    w.field("count", std::uint64_t(3));
    w.field("ratio", 0.5);
    w.field("flag", true);
    w.endObject();
    EXPECT_TRUE(w.balanced());
    EXPECT_EQ(w.str(),
              "{\"name\":\"x\",\"count\":3,\"ratio\":0.5,"
              "\"flag\":true}");
}

TEST(JsonWriter, NestedStructures)
{
    JsonWriter w;
    w.beginObject();
    w.key("list");
    w.beginArray();
    w.value(std::uint64_t(1));
    w.value(std::uint64_t(2));
    w.endArray();
    w.key("inner");
    w.beginObject();
    w.field("a", std::uint64_t(7));
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"list\":[1,2],\"inner\":{\"a\":7}}");
}

TEST(JsonWriter, EscapesStrings)
{
    JsonWriter w;
    w.beginObject();
    w.field("s", std::string("a\"b\\c\nd"));
    w.endObject();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, EmptyContainers)
{
    JsonWriter w;
    w.beginArray();
    w.beginObject();
    w.endObject();
    w.endArray();
    EXPECT_EQ(w.str(), "[{}]");
}

TEST(Report, SimResultRoundTripsThroughPython)
{
    // Structural check: the export contains the headline fields and
    // parses as JSON (validated here by balanced braces/quotes and
    // key presence; the tools' output is validated against python in
    // CI-style usage).
    SimResult r;
    r.workload = "unit-test";
    r.prefetcher = "CBWS";
    r.core.instructions = 1000;
    r.core.cycles = 2000;
    r.mem.llcDemandMisses = 10;
    r.mem.demandL2Accesses = 50;
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"workload\":\"unit-test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"prefetcher\":\"CBWS\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ipc\":0.5"), std::string::npos);
    EXPECT_NE(json.find("\"classification\""), std::string::npos);
    EXPECT_NE(json.find("\"dram\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Report, BatchIsArray)
{
    std::vector<SimResult> results(2);
    results[0].workload = "a";
    results[1].workload = "b";
    const std::string json = toJson(results);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"a\""), std::string::npos);
    EXPECT_NE(json.find("\"b\""), std::string::npos);
}

TEST(Report, LiveSimulationExports)
{
    auto w = findWorkload("mxm-linpack");
    WorkloadParams params;
    params.maxInstructions = 5000;
    SystemConfig config;
    config.prefetcher = PrefetcherKind::CbwsSms;
    SimResult r = simulateWorkload(*w, config, params);
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"prefetcher\":\"CBWS+SMS\""),
              std::string::npos);
    EXPECT_NE(json.find("\"storage_bits\""), std::string::npos);
}

TEST(StatsDump, ContainsEveryCounterGroup)
{
    SimResult r;
    r.workload = "w";
    r.prefetcher = "SMS";
    r.core.instructions = 10;
    r.core.cycles = 20;
    std::ostringstream out;
    dumpStats(out, r);
    const std::string s = out.str();
    for (const char *key :
         {"sim.instructions", "sim.ipc", "core.branchMispredicts",
          "l1d.accesses", "l2.demandMisses", "pf.issued",
          "pf.timelyFraction", "dram.bytesRead"}) {
        EXPECT_NE(s.find(key), std::string::npos) << key;
    }
    EXPECT_NE(s.find("Begin Simulation Statistics"),
              std::string::npos);
    EXPECT_NE(s.find("End Simulation Statistics"),
              std::string::npos);
}

TEST(StatsDump, ValuesRendered)
{
    SimResult r;
    r.core.instructions = 1234;
    r.core.cycles = 2468;
    std::ostringstream out;
    dumpStats(out, r);
    EXPECT_NE(out.str().find("1234"), std::string::npos);
    EXPECT_NE(out.str().find("0.5"), std::string::npos); // ipc
}

} // anonymous namespace
} // namespace cbws
