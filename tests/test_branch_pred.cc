/**
 * @file
 * Unit tests for the tournament branch predictor and BTB.
 */

#include <gtest/gtest.h>

#include "cpu/branch_pred.hh"

namespace cbws
{
namespace
{

TEST(TournamentBP, LoopBranchConverges)
{
    TournamentBP bp;
    const Addr pc = 0x400100;
    // Loop-closing branch: taken 99 times, then not taken.
    unsigned mispredicts = 0;
    for (int i = 0; i < 100; ++i) {
        auto r = bp.predictAndTrain(pc, i < 99, 0x400000);
        if (r.mispredict())
            ++mispredicts;
    }
    // Converges quickly: a handful of warmup mispredicts plus the
    // final exit at most.
    EXPECT_LE(mispredicts, 5u);
    EXPECT_EQ(bp.lookups(), 100u);
    EXPECT_EQ(bp.mispredicts(), mispredicts);
}

TEST(TournamentBP, AlternatingPatternLearned)
{
    TournamentBP bp;
    const Addr pc = 0x400200;
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 400; ++i) {
        const bool taken = i % 2 == 0;
        auto r = bp.predictAndTrain(pc, taken, 0x400000);
        if (i >= 200 && r.dirMispredict)
            ++late_mispredicts;
    }
    // Local history easily captures period-2 behaviour.
    EXPECT_EQ(late_mispredicts, 0u);
}

TEST(TournamentBP, Period4PatternLearned)
{
    TournamentBP bp;
    const Addr pc = 0x400300;
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 800; ++i) {
        const bool taken = i % 4 != 3;
        auto r = bp.predictAndTrain(pc, taken, 0x400000);
        if (i >= 400 && r.dirMispredict)
            ++late_mispredicts;
    }
    EXPECT_LE(late_mispredicts, 4u);
}

TEST(TournamentBP, RandomBranchMispredictsOften)
{
    TournamentBP bp;
    const Addr pc = 0x400400;
    std::uint64_t x = 88172645463325252ull;
    unsigned mispredicts = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        auto r = bp.predictAndTrain(pc, (x & 1) != 0, 0x400000);
        if (r.dirMispredict)
            ++mispredicts;
    }
    // Random outcomes cannot be predicted: ~50% misses.
    EXPECT_GT(mispredicts, n / 3u);
}

TEST(TournamentBP, BtbMissOnFirstTakenBranch)
{
    TournamentBP bp;
    // Prime the direction predictor at a different pc that aliases
    // nothing; the first *taken* encounter of a branch can direction-
    // predict taken but must flag a BTB target miss.
    const Addr pc = 0x400500;
    bool saw_target_misp = false;
    for (int i = 0; i < 10; ++i) {
        auto r = bp.predictAndTrain(pc, true, 0x400000);
        if (r.targetMispredict)
            saw_target_misp = true;
    }
    EXPECT_TRUE(saw_target_misp);
    // Once installed, no further target misses.
    auto r = bp.predictAndTrain(pc, true, 0x400000);
    EXPECT_FALSE(r.targetMispredict);
}

TEST(TournamentBP, BtbDetectsChangedTarget)
{
    TournamentBP bp;
    const Addr pc = 0x400600;
    for (int i = 0; i < 10; ++i)
        bp.predictAndTrain(pc, true, 0xAAA000);
    auto r = bp.predictAndTrain(pc, true, 0xBBB000);
    EXPECT_TRUE(r.targetMispredict);
}

TEST(TournamentBP, IndependentBranchesDoNotDestroyEachOther)
{
    TournamentBP bp;
    // Two branches with opposite biases at non-aliasing PCs.
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 600; ++i) {
        auto r1 = bp.predictAndTrain(0x400700, true, 0x400000);
        auto r2 = bp.predictAndTrain(0x404704, false, 0x400000);
        if (i >= 300) {
            late_mispredicts += r1.dirMispredict;
            late_mispredicts += r2.dirMispredict;
        }
    }
    EXPECT_LE(late_mispredicts, 6u);
}

TEST(TournamentBP, RejectsNonPowerOf2Tables)
{
    BranchPredParams p;
    p.globalEntries = 1000;
    EXPECT_EXIT({ TournamentBP bp(p); }, testing::ExitedWithCode(1),
                "");
}

} // anonymous namespace
} // namespace cbws
