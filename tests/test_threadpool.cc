/**
 * @file
 * Unit tests of the thread-pool job system: inline degeneration,
 * completion and ordering guarantees, exception propagation through
 * wait(), clean shutdown with queued work, and the parallelFor /
 * CBWS_JOBS helpers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "base/threadpool.hh"

namespace cbws
{
namespace
{

TEST(ThreadPool, InlineModeRunsTasksInSubmissionOrder)
{
    for (unsigned workers : {0u, 1u}) {
        ThreadPool pool(workers);
        EXPECT_EQ(pool.workers(), 0u) << "no thread may be spawned";
        std::vector<int> order;
        for (int i = 0; i < 8; ++i)
            pool.submit([&order, i] { order.push_back(i); });
        // Inline mode: everything already ran inside submit().
        ASSERT_EQ(order.size(), 8u);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
        pool.wait(); // must be a no-op, not a hang
    }
}

TEST(ThreadPool, WaitCompletesEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    constexpr int N = 200;
    for (int i = 0; i < N; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), N);

    // The pool is reusable after wait().
    for (int i = 0; i < N; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 2 * N);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    pool.submit([] { throw std::runtime_error("task failed"); });
    for (int i = 0; i < 16; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // A failure poisons only that wait(); later batches are clean.
    pool.submit([&done] { done.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPool, InlineModePropagatesExceptionFromWait)
{
    ThreadPool pool(1);
    pool.submit([] { throw std::logic_error("inline failure"); });
    EXPECT_THROW(pool.wait(), std::logic_error);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    constexpr int N = 64;
    {
        ThreadPool pool(3);
        for (int i = 0; i < N; ++i)
            pool.submit([&done] { done.fetch_add(1); });
        // No wait(): shutdown must still complete everything.
    }
    EXPECT_EQ(done.load(), N);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 9u}) {
        constexpr std::size_t N = 500;
        // Disjoint slots: no synchronisation needed, and a repeated
        // or skipped index shows up as a count != 1.
        std::vector<int> visits(N, 0);
        parallelFor(jobs, N,
                    [&visits](std::size_t i) { ++visits[i]; });
        for (std::size_t i = 0; i < N; ++i)
            EXPECT_EQ(visits[i], 1) << "index " << i;
    }
}

TEST(ParallelFor, ZeroCountIsANoOp)
{
    bool called = false;
    parallelFor(8, 0, [&called](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesBodyException)
{
    EXPECT_THROW(parallelFor(4, 32,
                             [](std::size_t i) {
                                 if (i == 7)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(JobsFromEnv, ReadsCbwsJobsWithFallback)
{
    ::unsetenv("CBWS_JOBS");
    EXPECT_EQ(ThreadPool::jobsFromEnv(3), 3u);
    EXPECT_GE(ThreadPool::jobsFromEnv(0), 1u) << "0 = hardware count";

    ::setenv("CBWS_JOBS", "6", 1);
    EXPECT_EQ(ThreadPool::jobsFromEnv(1), 6u);
    ::setenv("CBWS_JOBS", "not-a-number", 1);
    EXPECT_EQ(ThreadPool::jobsFromEnv(2), 2u);
    ::unsetenv("CBWS_JOBS");
}

TEST(JobsFromEnv, HardwareJobsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
}

} // anonymous namespace
} // namespace cbws
