/**
 * @file
 * Backoff determinism: the jittered BackoffSchedule must replay the
 * exact delay sequence for a given seed (CBWS_FAULT_SEED convention),
 * spread different seeds apart, respect the envelope cap, and drive
 * retryWithBackoff through its injectable sleeper without a single
 * real sleep — the property the serve-layer chaos runs rely on to be
 * reproducible.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "base/retry.hh"

namespace cbws
{
namespace
{

TEST(BackoffSchedule, SameSeedReplaysExactDelays)
{
    BackoffSchedule a;
    a.baseMs = 10;
    a.maxMs = 5000;
    a.seed = 42;
    BackoffSchedule b = a;
    for (unsigned attempt = 0; attempt < 32; ++attempt)
        EXPECT_EQ(a.delayMs(attempt), b.delayMs(attempt))
            << "attempt " << attempt;
}

TEST(BackoffSchedule, DifferentSeedsDesynchronise)
{
    BackoffSchedule a, b;
    a.seed = 1;
    b.seed = 2;
    bool differed = false;
    for (unsigned attempt = 0; attempt < 16 && !differed; ++attempt)
        differed = a.delayMs(attempt) != b.delayMs(attempt);
    EXPECT_TRUE(differed)
        << "two seeds produced identical 16-delay sequences";
}

TEST(BackoffSchedule, EnvelopeGrowsAndCaps)
{
    BackoffSchedule s;
    s.baseMs = 10;
    s.maxMs = 1000;
    s.seed = 7;
    for (unsigned attempt = 0; attempt < 64; ++attempt) {
        const std::uint64_t d = s.delayMs(attempt);
        // Jitter covers the upper half of the envelope: the delay
        // sits in [envelope/2, envelope] and never over the cap.
        EXPECT_LE(d, 1000u) << "attempt " << attempt;
        EXPECT_GE(d, 5u) << "attempt " << attempt;
    }
    // Early attempts stay under their (smaller) envelopes.
    EXPECT_LE(s.delayMs(0), 10u);
    EXPECT_LE(s.delayMs(1), 20u);
    EXPECT_LE(s.delayMs(2), 40u);
}

TEST(BackoffSchedule, ZeroBaseMeansNoDelay)
{
    BackoffSchedule s;
    s.baseMs = 0;
    for (unsigned attempt = 0; attempt < 8; ++attempt)
        EXPECT_EQ(s.delayMs(attempt), 0u);
}

TEST(Retry, ScheduleSleeperSeesDeterministicDelays)
{
    BackoffSchedule s;
    s.baseMs = 10;
    s.maxMs = 5000;
    s.seed = 99;

    auto run = [&]() {
        std::vector<std::uint64_t> slept;
        int calls = 0;
        Result<void> r = retryWithBackoff(
            5, s,
            [&]() -> Result<void> {
                if (++calls < 4)
                    return Error(Errc::IoError, "transient");
                return Result<void>();
            },
            [&](std::uint64_t ms) { slept.push_back(ms); });
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(calls, 4);
        return slept;
    };

    const std::vector<std::uint64_t> first = run();
    const std::vector<std::uint64_t> second = run();
    ASSERT_EQ(first.size(), 3u); // sleeps between 4 calls
    EXPECT_EQ(first, second);
    // The recorded delays are exactly the schedule's.
    for (unsigned i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i], s.delayMs(i));
}

TEST(Retry, ExhaustionReturnsLastError)
{
    BackoffSchedule s;
    s.baseMs = 0; // no sleeping
    int calls = 0;
    Result<void> r = retryWithBackoff(
        3, s,
        [&]() -> Result<void> {
            ++calls;
            return Error(Errc::IoError,
                         "fail " + std::to_string(calls));
        },
        [](std::uint64_t) { FAIL() << "slept despite baseMs == 0"; });
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(r.error().message, "fail 3");
}

TEST(Retry, FaultSeedFromEnvDrivesTheSchedule)
{
    // CBWS_FAULT_SEED is the conventional seed source: the same value
    // must reproduce the same schedule, and unset must default to 1.
    ::setenv("CBWS_FAULT_SEED", "1234", 1);
    EXPECT_EQ(faultSeedFromEnv(), 1234u);
    BackoffSchedule a;
    a.seed = faultSeedFromEnv();
    BackoffSchedule b;
    b.seed = 1234;
    for (unsigned attempt = 0; attempt < 8; ++attempt)
        EXPECT_EQ(a.delayMs(attempt), b.delayMs(attempt));

    ::unsetenv("CBWS_FAULT_SEED");
    EXPECT_EQ(faultSeedFromEnv(), 1u);
    ::setenv("CBWS_FAULT_SEED", "garbage", 1);
    EXPECT_EQ(faultSeedFromEnv(), 1u);
    ::unsetenv("CBWS_FAULT_SEED");
}

} // namespace
} // namespace cbws
