/**
 * @file
 * Unit tests for the GHB delta-correlation prefetchers (G/DC, PC/DC).
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "prefetch/ghb.hh"
#include "test_util.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

TEST(GhbGlobal, ConstantDeltaStreamPredicted)
{
    GhbPrefetcher pf(GhbPrefetcher::Mode::GlobalDC);
    MockSink sink;
    for (int i = 0; i < 8; ++i)
        pf.observeAccess(memCtx(0x400, i * 128ull), sink);
    // After the pair (2,2) recurs, the following deltas replay
    // (the overlapping match bounds the replay to two lines).
    const LineAddr last = lineOf(7 * 128);
    EXPECT_TRUE(sink.wasIssued(last + 2));
    EXPECT_TRUE(sink.wasIssued(last + 4));
}

TEST(GhbGlobal, PeriodicDeltaPatternPredicted)
{
    GhbPrefetcher pf(GhbPrefetcher::Mode::GlobalDC);
    MockSink sink;
    // Period-3 delta pattern: +1, +2, +7 (lines).
    LineAddr line = 1000;
    std::vector<LineAddr> lines;
    const int deltas[3] = {1, 2, 7};
    for (int i = 0; i < 20; ++i) {
        lines.push_back(line);
        pf.observeAccess(memCtx(0x400, line * 64), sink);
        line += deltas[i % 3];
    }
    // After the last access the correlated continuation is issued.
    EXPECT_FALSE(sink.issued.empty());
    // The very next line in the pattern must be among the issues.
    EXPECT_TRUE(sink.wasIssued(line));
}

TEST(GhbPcDc, PerPcStreamsIndependent)
{
    GhbPrefetcher pf(GhbPrefetcher::Mode::PcDC);
    MockSink sink;
    // Interleave two PC streams with different strides; PC-localised
    // correlation must not confuse them.
    for (int i = 0; i < 10; ++i) {
        pf.observeAccess(memCtx(0x400, i * 64ull), sink);
        pf.observeAccess(memCtx(0x500, 0x4000000 + i * 320ull), sink);
    }
    EXPECT_TRUE(sink.wasIssued(lineOf(9 * 64) + 1));
    EXPECT_TRUE(sink.wasIssued(lineOf(0x4000000 + 9 * 320) + 5));
}

TEST(GhbGlobal, InterleavedStreamsHandledGlobally)
{
    // The global mode sees the interleaved delta sequence; because
    // the interleaving is strictly periodic, it remains predictable
    // (Section III's coordinated-streams observation).
    GhbPrefetcher pf(GhbPrefetcher::Mode::GlobalDC);
    MockSink sink;
    for (int i = 0; i < 16; ++i) {
        pf.observeAccess(memCtx(0x400, i * 64ull), sink);
        pf.observeAccess(memCtx(0x500, 0x4000000 + i * 64ull), sink);
    }
    EXPECT_FALSE(sink.issued.empty());
}

TEST(Ghb, RandomStreamStaysQuiet)
{
    GhbPrefetcher pf(GhbPrefetcher::Mode::GlobalDC);
    MockSink sink;
    Random rng(17);
    for (int i = 0; i < 100; ++i)
        pf.observeAccess(memCtx(0x400, rng.below(1 << 27) * 64), sink);
    // Random deltas essentially never produce a matching pair twice
    // in a row with a usable continuation.
    EXPECT_LT(sink.issued.size(), 10u);
}

TEST(Ghb, TrainsOnMissesOnly)
{
    GhbPrefetcher pf(GhbPrefetcher::Mode::GlobalDC);
    MockSink sink;
    for (int i = 0; i < 10; ++i) {
        pf.observeAccess(memCtx(0x400, i * 128ull, false, true,
                                /*l2_miss=*/false),
                         sink);
    }
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Ghb, BufferWraparoundInvalidatesStaleLinks)
{
    GhbParams params;
    params.bufferEntries = 8;
    GhbPrefetcher pf(GhbPrefetcher::Mode::PcDC, params);
    MockSink sink;
    // Train PC A, then flood the buffer with PC B entries so A's
    // chain is overwritten; a new A access must not follow stale
    // links (and must not crash).
    for (int i = 0; i < 4; ++i)
        pf.observeAccess(memCtx(0xA00, i * 64ull), sink);
    for (int i = 0; i < 32; ++i)
        pf.observeAccess(memCtx(0xB00, 0x4000000 + i * 7777ull),
                         sink);
    sink.issued.clear();
    pf.observeAccess(memCtx(0xA00, 4 * 64ull), sink);
    // Stale chain -> not enough history -> no (or almost no) issues.
    EXPECT_LE(sink.issued.size(), 3u);
}

TEST(Ghb, StorageMatchesTable3)
{
    GhbPrefetcher gdc(GhbPrefetcher::Mode::GlobalDC);
    GhbPrefetcher pcdc(GhbPrefetcher::Mode::PcDC);
    // Table III: G/DC = (6 x 12) x 256 = 2.25 KB;
    // PC/DC adds a 48-bit PC per entry = 3.75 KB.
    EXPECT_EQ(gdc.storageBits(), 72u * 256u);
    EXPECT_EQ(pcdc.storageBits(), (72u + 48u) * 256u);
    EXPECT_DOUBLE_EQ(gdc.storageBits() / 8 / 1024.0, 2.25);
    EXPECT_DOUBLE_EQ(pcdc.storageBits() / 8 / 1024.0, 3.75);
}

TEST(Ghb, DegreeLimitsIssues)
{
    GhbParams params;
    params.degree = 2;
    GhbPrefetcher pf(GhbPrefetcher::Mode::GlobalDC, params);
    MockSink sink;
    for (int i = 0; i < 6; ++i)
        pf.observeAccess(memCtx(0x400, i * 128ull), sink);
    sink.issued.clear();
    pf.observeAccess(memCtx(0x400, 6 * 128ull), sink);
    EXPECT_LE(sink.issued.size(), 2u);
}

TEST(Ghb, NamesDistinguishModes)
{
    EXPECT_EQ(GhbPrefetcher(GhbPrefetcher::Mode::GlobalDC).name(),
              "GHB-G/DC");
    EXPECT_EQ(GhbPrefetcher(GhbPrefetcher::Mode::PcDC).name(),
              "GHB-PC/DC");
}

} // anonymous namespace
} // namespace cbws
