/**
 * @file
 * Result<T>/Result<void> contract: ok/error duality, code and
 * message propagation, valueOr fallbacks, move-out of move-only
 * payloads, and the GTest AssertionResult interop the I/O tests
 * lean on (ASSERT_TRUE(result) must compile and read naturally).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "base/result.hh"

namespace cbws
{
namespace
{

TEST(Result, ValueSideRoundTrips)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r);
    EXPECT_EQ(r.code(), Errc::Ok);
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(-1), 42);
}

TEST(Result, ErrorSideCarriesCodeAndMessage)
{
    Result<int> r(Errc::Corrupt, "checksum mismatch");
    ASSERT_FALSE(r.ok());
    ASSERT_FALSE(r);
    EXPECT_EQ(r.code(), Errc::Corrupt);
    EXPECT_EQ(r.error().code, Errc::Corrupt);
    EXPECT_EQ(r.error().message, "checksum mismatch");
    EXPECT_EQ(r.error().str(), "corrupt: checksum mismatch");
    EXPECT_EQ(r.valueOr(-1), -1);
}

TEST(Result, ErrorStrWithoutMessageIsJustTheCode)
{
    EXPECT_EQ(Error(Errc::NotFound, "").str(), "not-found");
}

TEST(Result, ErrcNamesAreStable)
{
    // Error strings appear in logs and CLI output; renames are
    // format changes, not refactors.
    EXPECT_STREQ(toString(Errc::Ok), "ok");
    EXPECT_STREQ(toString(Errc::NotFound), "not-found");
    EXPECT_STREQ(toString(Errc::IoError), "io-error");
    EXPECT_STREQ(toString(Errc::Corrupt), "corrupt");
    EXPECT_STREQ(toString(Errc::VersionMismatch), "version-mismatch");
    EXPECT_STREQ(toString(Errc::InvalidArgument), "invalid-argument");
    EXPECT_STREQ(toString(Errc::Unsupported), "unsupported");
    EXPECT_STREQ(toString(Errc::FaultInjected), "fault-injected");
}

TEST(Result, MoveOnlyPayloadMovesOut)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> p = std::move(r).value();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 7);
}

TEST(Result, ErrorPropagatesAcrossPayloadTypes)
{
    // The common plumbing pattern: a Result<A> error is returned
    // from a function producing Result<B> by forwarding .error().
    Result<std::string> inner(Errc::IoError, "disk on fire");
    Result<int> outer(inner.error());
    ASSERT_FALSE(outer.ok());
    EXPECT_EQ(outer.code(), Errc::IoError);
    EXPECT_EQ(outer.error().message, "disk on fire");
}

TEST(ResultVoid, DefaultIsSuccess)
{
    Result<void> r;
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r);
    EXPECT_EQ(r.code(), Errc::Ok);
}

TEST(ResultVoid, ErrorSide)
{
    Result<void> r(Errc::FaultInjected, "injected failure");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::FaultInjected);
    EXPECT_EQ(r.error().str(), "fault-injected: injected failure");
}

TEST(ResultVoid, WorksInGtestAssertions)
{
    // GTest's AssertionResult accepts the explicit operator bool, so
    // call sites read ASSERT_TRUE(cache.store(...)) — verify both
    // polarities keep compiling.
    Result<void> good;
    Result<void> bad(Errc::NotFound, "");
    EXPECT_TRUE(good);
    EXPECT_FALSE(bad);
}

} // anonymous namespace
} // namespace cbws
