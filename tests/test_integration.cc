/**
 * @file
 * Integration tests asserting the paper's qualitative results hold in
 * this reproduction: who wins on which benchmark class, accuracy
 * ordering, and the storage hierarchy of Table III.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/experiment.hh"
#include "trace/loop_annotator.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

SimResult
runOne(const std::string &workload, PrefetcherKind kind,
       std::uint64_t insts = 40000)
{
    auto w = findWorkload(workload);
    EXPECT_NE(w, nullptr);
    SystemConfig cfg;
    cfg.prefetcher = kind;
    WorkloadParams params;
    params.maxInstructions = insts;
    return simulateWorkload(*w, cfg, params, SimProbes(), insts / 4);
}

TEST(Integration, CbwsBeatsSmsOnBlockStructuredKernels)
{
    // Paper Section VII-A/C: sgemm, stencil, lu-ncb are CBWS wins.
    for (const char *name :
         {"sgemm-medium", "stencil-default", "lu-ncb-simlarge"}) {
        SimResult sms = runOne(name, PrefetcherKind::Sms);
        SimResult cbws = runOne(name, PrefetcherKind::Cbws);
        EXPECT_GT(cbws.ipc(), sms.ipc() * 1.3)
            << name << " CBWS should clearly beat SMS";
        EXPECT_LT(cbws.mpki(), sms.mpki())
            << name << " CBWS should cut MPKI below SMS";
    }
}

TEST(Integration, SgemmHeadlineSpeedup)
{
    // The paper's best case: ~4x on sgemm for CBWS+SMS over SMS.
    SimResult sms = runOne("sgemm-medium", PrefetcherKind::Sms);
    SimResult hybrid = runOne("sgemm-medium", PrefetcherKind::CbwsSms);
    EXPECT_GT(hybrid.ipc() / sms.ipc(), 2.5);
}

TEST(Integration, SmsWinsOnDataDependentKernels)
{
    // histo's histogram update is input-data dependent: standalone
    // CBWS cannot predict it (Fig. 16 discussion).
    SimResult sms = runOne("histo-large", PrefetcherKind::Sms);
    SimResult cbws = runOne("histo-large", PrefetcherKind::Cbws);
    EXPECT_GT(sms.ipc(), cbws.ipc() * 1.2);
}

TEST(Integration, HybridFallsBackGracefully)
{
    // Where CBWS fails, CBWS+SMS must track SMS closely (the "best
    // of both worlds" claim).
    for (const char *name : {"histo-large", "450.soplex-ref"}) {
        SimResult sms = runOne(name, PrefetcherKind::Sms);
        SimResult hybrid = runOne(name, PrefetcherKind::CbwsSms);
        EXPECT_GT(hybrid.ipc(), sms.ipc() * 0.9) << name;
    }
}

TEST(Integration, HybridNeverFarBelowStandaloneCbws)
{
    for (const char *name : {"stencil-default", "radix-simlarge"}) {
        SimResult cbws = runOne(name, PrefetcherKind::Cbws);
        SimResult hybrid = runOne(name, PrefetcherKind::CbwsSms);
        EXPECT_GT(hybrid.ipc(), cbws.ipc() * 0.9) << name;
    }
}

TEST(Integration, CbwsAccuracyBest)
{
    // Fig. 13: CBWS has the fewest wrong prefetches of the real
    // prefetchers on memory-intensive workloads.
    const char *name = "stencil-default";
    SimResult cbws = runOne(name, PrefetcherKind::Cbws);
    SimResult ghb = runOne(name, PrefetcherKind::GhbPcDc);
    EXPECT_LE(cbws.wrongFraction(), ghb.wrongFraction() + 0.02);
    EXPECT_LT(cbws.wrongFraction(), 0.15);
}

TEST(Integration, PrefetchingNeverBreaksCorrectnessMetrics)
{
    // Same trace, all prefetchers: committed instructions identical,
    // and every scheme's timing is >= the zero-latency bound.
    auto w = findWorkload("radix-simlarge");
    WorkloadParams params;
    params.maxInstructions = 20000;
    Trace t;
    w->generate(t, params);
    for (PrefetcherKind kind : allPrefetcherKinds()) {
        SystemConfig cfg;
        cfg.prefetcher = kind;
        SimResult r = simulate(t, cfg, params.maxInstructions);
        EXPECT_EQ(r.core.instructions, params.maxInstructions)
            << toString(kind);
        EXPECT_GE(r.core.cycles, params.maxInstructions / 4)
            << toString(kind);
    }
}

TEST(Integration, StorageHierarchyMatchesTable3)
{
    SystemConfig cfg;
    auto storage = [&cfg](PrefetcherKind kind) {
        cfg.prefetcher = kind;
        return makePrefetcher(cfg)->storageBits();
    };
    const auto cbws = storage(PrefetcherKind::Cbws);
    const auto stride = storage(PrefetcherKind::Stride);
    const auto gdc = storage(PrefetcherKind::GhbGDc);
    const auto pcdc = storage(PrefetcherKind::GhbPcDc);
    const auto sms = storage(PrefetcherKind::Sms);
    // CBWS < 1 KB, smallest of all; SMS is the largest (5 KB).
    EXPECT_LT(cbws, 8192u);
    EXPECT_LT(cbws, stride);
    EXPECT_LT(cbws, gdc);
    EXPECT_LT(stride, pcdc);
    EXPECT_LT(pcdc, sms);
}

TEST(Integration, LoopFractionHighOnMiBenchmarks)
{
    // Fig. 1: on average >70% of MI benchmark runtime is in tight
    // innermost loops.
    double sum = 0.0;
    int n = 0;
    for (const char *name :
         {"stencil-default", "sgemm-medium", "462.libquantum-ref",
          "radix-simlarge"}) {
        SimResult r = runOne(name, PrefetcherKind::None, 20000);
        sum += r.core.loopFraction();
        ++n;
    }
    EXPECT_GT(sum / n, 0.7);
}

TEST(Integration, HeadlineReproduces)
{
    // The paper's headline: CBWS+SMS outperforms SMS by ~1.31x
    // (geomean) on the memory-intensive group. At a reduced test
    // budget the measured geomean is somewhat noisy, so guard a
    // conservative bound.
    SystemConfig cfg;
    auto matrix =
        runMatrix(memoryIntensiveWorkloads(),
                  {PrefetcherKind::Sms, PrefetcherKind::CbwsSms},
                  cfg, 50000);
    double log_sum = 0.0;
    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
        const double ratio =
            matrix.result(r, PrefetcherKind::CbwsSms).ipc() /
            matrix.result(r, PrefetcherKind::Sms).ipc();
        log_sum += std::log(ratio);
    }
    const double geomean =
        std::exp(log_sum / matrix.rows.size());
    EXPECT_GT(geomean, 1.15);
    EXPECT_LT(geomean, 2.0); // sanity upper bound
}

TEST(Integration, AnnotatorMatchesExplicitMarkersOnLoopKernel)
{
    // Strip the kernel's own markers from a trace, re-annotate with
    // the automatic detector, and verify CBWS performs comparably:
    // the LLVM-pass substitution argument of DESIGN.md.
    auto w = findWorkload("462.libquantum-ref");
    WorkloadParams params;
    params.maxInstructions = 30000;
    Trace annotated;
    w->generate(annotated, params);

    Trace raw;
    for (const auto &rec : annotated)
        if (!isBlockMarker(rec.cls))
            raw.append(rec);
    LoopAnnotator ann;
    Trace reannotated = ann.annotate(raw);
    ASSERT_GE(ann.loops().size(), 1u);

    SystemConfig cfg;
    cfg.prefetcher = PrefetcherKind::Cbws;
    SimResult manual = simulate(annotated, cfg, 25000);
    SimResult automatic = simulate(reannotated, cfg, 25000);
    EXPECT_NEAR(automatic.ipc(), manual.ipc(),
                manual.ipc() * 0.15);
    EXPECT_LT(automatic.mpki(), 5.0);
}

} // anonymous namespace
} // namespace cbws
