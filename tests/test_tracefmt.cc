/**
 * @file
 * Tests of the Chrome trace-event exporter (sim/tracefmt.hh): the
 * emitted JSON must parse, spans on one thread row must be well
 * nested, a deterministic event sequence must stay byte-identical to
 * the checked-in golden file, and a host-profiler report merged via
 * writeHostPhases must round-trip (names, durations, entry counts)
 * through a JSON parse.
 *
 * Regenerate the golden after an intentional format change with:
 *   CBWS_UPDATE_GOLDEN=1 ./build/tests/cbws_tests \
 *       --gtest_filter='*GoldenFile*'
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/jsonparse.hh"
#include "base/metrics.hh"
#include "base/profiler.hh"
#include "sim/tracefmt.hh"

namespace cbws
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** A synthetic profiler report with fixed, easy-to-check numbers. */
prof::Report
syntheticReport()
{
    prof::Report rep;
    rep.enabled = true;
    rep.wallSeconds = 0.05;
    rep.phaseSeconds[static_cast<unsigned>(prof::Phase::Decode)] =
        0.02;
    rep.phaseEntries[static_cast<unsigned>(prof::Phase::Decode)] = 3;
    rep.phaseSeconds[static_cast<unsigned>(prof::Phase::Dram)] =
        0.005;
    rep.phaseEntries[static_cast<unsigned>(prof::Phase::Dram)] = 7;
    prof::WorkerTotals w0;
    w0.busySeconds = 0.01;
    w0.queueWaitSeconds = 0.002;
    w0.jobs = 4;
    rep.workers.push_back(w0);
    rep.poolsObserved = 1;
    return rep;
}

/** Emit the deterministic event sequence the golden test pins. */
void
writeSmallTrace(const std::string &path)
{
    ChromeTraceWriter w(path, 0, 1000);
    ASSERT_TRUE(w.ok());
    w.complete("cache", "l1d_miss", TraceTrack::Cache, 10, 40, 0x1000);
    w.complete("core", "loop_body", TraceTrack::Core, 10, 100, 0x400);
    w.instant("prefetch", "pf_issue", TraceTrack::Prefetch, 25,
              0x1040);
    w.counter("mshr_occupancy", 50, 3);
    MetricsRegistry reg;
    reg.addScalar("l1d.misses", 12, "demand misses");
    reg.addReal("sim.ipc", 0.5, "instructions per cycle");
    reg.addVector("skipped.vector", {1, 2}, "no counter rendering");
    w.writeMetricCounters(reg, 999);
    w.writeHostPhases(syntheticReport());
    w.close();
}

/** Every "X"/"i"/"C"/"M" event from a parsed trace document. */
const std::vector<JsonValue> &
events(const JsonValue &root)
{
    const JsonValue *ev = root.find("traceEvents");
    EXPECT_NE(ev, nullptr);
    EXPECT_TRUE(ev->isArray());
    return ev->array;
}

TEST(ChromeTrace, EmitsParseableSchemaValidJson)
{
    const std::string path =
        testing::TempDir() + "cbws_trace_schema.json";
    writeSmallTrace(path);
    Result<JsonValue> doc = parseJson(slurp(path));
    ASSERT_TRUE(doc.ok()) << doc.error().str();
    const JsonValue &root = doc.value();
    EXPECT_EQ(root.strOr("displayTimeUnit"), "ms");

    bool saw_complete = false, saw_instant = false;
    bool saw_counter = false, saw_meta = false;
    for (const JsonValue &e : events(root)) {
        ASSERT_TRUE(e.isObject());
        const std::string ph = e.strOr("ph");
        ASSERT_FALSE(ph.empty());
        ASSERT_NE(e.find("pid"), nullptr);
        if (ph == "X") {
            saw_complete = true;
            ASSERT_NE(e.find("ts"), nullptr);
            ASSERT_NE(e.find("dur"), nullptr);
            EXPECT_FALSE(e.strOr("name").empty());
        } else if (ph == "i") {
            saw_instant = true;
            ASSERT_NE(e.find("ts"), nullptr);
        } else if (ph == "C") {
            saw_counter = true;
            ASSERT_NE(e.find("args"), nullptr);
        } else if (ph == "M") {
            saw_meta = true;
        }
    }
    EXPECT_TRUE(saw_complete);
    EXPECT_TRUE(saw_instant);
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_meta);
    std::remove(path.c_str());
}

TEST(ChromeTrace, SpansAreWellNestedPerThreadRow)
{
    const std::string path =
        testing::TempDir() + "cbws_trace_nesting.json";
    writeSmallTrace(path);
    Result<JsonValue> doc = parseJson(slurp(path));
    ASSERT_TRUE(doc.ok()) << doc.error().str();

    // Chrome's model: on one (pid, tid) row, two "X" spans must be
    // disjoint or properly contained — partial overlap renders as
    // garbage. Collect spans per row and check every pair.
    struct Span
    {
        double ts, end;
    };
    std::vector<std::pair<std::pair<std::uint64_t, std::uint64_t>,
                          Span>>
        spans;
    for (const JsonValue &e : events(doc.value())) {
        if (e.strOr("ph") != "X")
            continue;
        const JsonValue *ts = e.find("ts");
        const JsonValue *dur = e.find("dur");
        ASSERT_NE(ts, nullptr);
        ASSERT_NE(dur, nullptr);
        spans.push_back({{e.uintOr("pid"), e.uintOr("tid")},
                         {ts->number, ts->number + dur->number}});
    }
    ASSERT_GE(spans.size(), 4u);
    for (std::size_t i = 0; i < spans.size(); ++i) {
        for (std::size_t j = i + 1; j < spans.size(); ++j) {
            if (spans[i].first != spans[j].first)
                continue;
            const Span &a = spans[i].second;
            const Span &b = spans[j].second;
            const bool disjoint = a.end <= b.ts || b.end <= a.ts;
            const bool nested =
                (a.ts <= b.ts && b.end <= a.end) ||
                (b.ts <= a.ts && a.end <= b.end);
            EXPECT_TRUE(disjoint || nested)
                << "spans [" << a.ts << "," << a.end << ") and ["
                << b.ts << "," << b.end << ") partially overlap";
        }
    }
    std::remove(path.c_str());
}

TEST(ChromeTrace, HostPhasesRoundTripThroughTheTrace)
{
    const std::string path =
        testing::TempDir() + "cbws_trace_host.json";
    {
        ChromeTraceWriter w(path, 0, 100);
        ASSERT_TRUE(w.ok());
        w.writeHostPhases(syntheticReport());
        w.close();
    }
    Result<JsonValue> doc = parseJson(slurp(path));
    ASSERT_TRUE(doc.ok()) << doc.error().str();

    // The host track lives in its own synthetic process (pid 2), with
    // phases on tid 0 laid back-to-back in wall-clock microseconds.
    std::vector<const JsonValue *> host;
    bool named_host_process = false;
    for (const JsonValue &e : events(doc.value())) {
        if (e.uintOr("pid") != 2)
            continue;
        if (e.strOr("ph") == "M" && e.strOr("name") == "process_name") {
            const JsonValue *args = e.find("args");
            ASSERT_NE(args, nullptr);
            named_host_process = args->strOr("name") == "cbws-host";
        }
        if (e.strOr("ph") == "X" && e.uintOr("tid") == 0)
            host.push_back(&e);
    }
    EXPECT_TRUE(named_host_process);
    ASSERT_EQ(host.size(), 2u); // decode + dram have non-zero time

    EXPECT_EQ(host[0]->strOr("name"),
              prof::toString(prof::Phase::Decode));
    EXPECT_EQ(host[0]->uintOr("ts"), 0u);
    EXPECT_EQ(host[0]->uintOr("dur"), 20000u); // 0.02 s in us
    const JsonValue *args0 = host[0]->find("args");
    ASSERT_NE(args0, nullptr);
    EXPECT_EQ(args0->uintOr("entries"), 3u);

    EXPECT_EQ(host[1]->strOr("name"),
              prof::toString(prof::Phase::Dram));
    EXPECT_EQ(host[1]->uintOr("ts"), 20000u); // after decode's span
    EXPECT_EQ(host[1]->uintOr("dur"), 5000u);
    const JsonValue *args1 = host[1]->find("args");
    ASSERT_NE(args1, nullptr);
    EXPECT_EQ(args1->uintOr("entries"), 7u);

    // Worker 0's busy/queue-wait spans land on tid 1.
    std::vector<const JsonValue *> worker;
    for (const JsonValue &e : events(doc.value()))
        if (e.uintOr("pid") == 2 && e.uintOr("tid") == 1 &&
            e.strOr("ph") == "X")
            worker.push_back(&e);
    ASSERT_EQ(worker.size(), 2u);
    EXPECT_EQ(worker[0]->strOr("name"), "busy");
    EXPECT_EQ(worker[0]->uintOr("dur"), 10000u);
    const JsonValue *wargs = worker[0]->find("args");
    ASSERT_NE(wargs, nullptr);
    EXPECT_EQ(wargs->uintOr("jobs"), 4u);
    EXPECT_EQ(worker[1]->strOr("name"), "queue_wait");
    EXPECT_EQ(worker[1]->uintOr("dur"), 2000u);
    std::remove(path.c_str());
}

TEST(ChromeTrace, DisabledReportAddsNoHostEvents)
{
    const std::string path =
        testing::TempDir() + "cbws_trace_nohost.json";
    {
        ChromeTraceWriter w(path, 0, 100);
        ASSERT_TRUE(w.ok());
        prof::Report rep; // enabled == false
        w.writeHostPhases(rep);
        EXPECT_EQ(w.eventsWritten(), 0u);
        w.close();
    }
    Result<JsonValue> doc = parseJson(slurp(path));
    ASSERT_TRUE(doc.ok()) << doc.error().str();
    for (const JsonValue &e : events(doc.value()))
        EXPECT_NE(e.uintOr("pid"), 2u);
    std::remove(path.c_str());
}

TEST(ChromeTrace, EventCapKeepsJsonValid)
{
    const std::string path =
        testing::TempDir() + "cbws_trace_capped.json";
    {
        ChromeTraceWriter w(path, 0, 1000, 3);
        ASSERT_TRUE(w.ok());
        for (int i = 0; i < 10; ++i)
            w.counter("ctr", static_cast<Cycle>(i), i);
        EXPECT_EQ(w.eventsWritten(), 3u);
        EXPECT_FALSE(w.wants(500)); // capped -> producers stop early
        w.close();
    }
    Result<JsonValue> doc = parseJson(slurp(path));
    ASSERT_TRUE(doc.ok()) << doc.error().str();
    std::size_t counters = 0;
    for (const JsonValue &e : events(doc.value()))
        if (e.strOr("ph") == "C")
            ++counters;
    EXPECT_EQ(counters, 3u);
    std::remove(path.c_str());
}

TEST(ChromeTrace, GoldenFileStaysByteIdentical)
{
    const std::string golden =
        std::string(CBWS_TESTS_DIR) + "/golden/chrome_trace_small.json";
    const std::string path =
        testing::TempDir() + "cbws_trace_golden.json";
    writeSmallTrace(path);
    const std::string produced = slurp(path);
    ASSERT_FALSE(produced.empty());

    if (std::getenv("CBWS_UPDATE_GOLDEN")) {
        std::ofstream out(golden, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << golden;
        out << produced;
        std::remove(path.c_str());
        GTEST_SKIP() << "golden regenerated at " << golden;
    }

    const std::string expected = slurp(golden);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << golden
        << " (regenerate with CBWS_UPDATE_GOLDEN=1)";
    EXPECT_EQ(produced, expected)
        << "trace format drifted; if intentional, regenerate with "
           "CBWS_UPDATE_GOLDEN=1";
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace cbws
