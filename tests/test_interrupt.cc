/**
 * @file
 * Graceful SIGINT/SIGTERM handling in runMatrix: the interrupt flag
 * must stop new cells at the boundary, the in-flight checkpoint must
 * be sealed (never torn), and a resumed run must be byte-identical to
 * an uninterrupted one. The handler itself is exercised with a real
 * raise() through the sigaction seam.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <sys/stat.h>
#include <string>
#include <vector>

#include "serve/worker.hh"
#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

std::vector<WorkloadPtr>
testWorkloads()
{
    std::vector<WorkloadPtr> w;
    w.push_back(findWorkload("nw"));
    w.push_back(findWorkload("fft-simlarge"));
    return w;
}

const std::vector<std::string> kSchemes = {"No-Prefetch", "Stride"};
constexpr std::uint64_t kInsts = 20000;
constexpr std::uint64_t kSeed = 42;

std::string
cleanRunJson()
{
    MatrixOptions options;
    options.jobs = 1;
    ExperimentMatrix matrix =
        runMatrix(testWorkloads(), kSchemes, SystemConfig(), kInsts,
                  kSeed, options);
    return toJson(serve::flattenMatrix(matrix));
}

class InterruptTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearMatrixInterrupt(); }
    void TearDown() override { clearMatrixInterrupt(); }
};

TEST_F(InterruptTest, RequestFlagRoundTrip)
{
    EXPECT_FALSE(matrixInterruptRequested());
    requestMatrixInterrupt();
    EXPECT_TRUE(matrixInterruptRequested());
    clearMatrixInterrupt();
    EXPECT_FALSE(matrixInterruptRequested());
}

TEST_F(InterruptTest, SignalHandlerSetsTheFlag)
{
    installMatrixSignalHandlers();
    ASSERT_FALSE(matrixInterruptRequested());
    // SA_RESETHAND: this first SIGTERM is caught and resets the
    // disposition to default, so raise it exactly once.
    ::raise(SIGTERM);
    EXPECT_TRUE(matrixInterruptRequested());
}

TEST_F(InterruptTest, ReturnPartialStopsAtTheBoundary)
{
    requestMatrixInterrupt();
    MatrixOptions options;
    options.jobs = 1;
    options.onInterrupt = MatrixOptions::OnInterrupt::ReturnPartial;
    ExperimentMatrix matrix =
        runMatrix(testWorkloads(), kSchemes, SystemConfig(), kInsts,
                  kSeed, options);
    EXPECT_TRUE(matrix.interrupted);
    // Nothing was simulated: every slot is default-constructed.
    for (const auto &row : matrix.rows)
        for (const auto &res : row.byPrefetcher)
            EXPECT_EQ(res.core.instructions, 0u);
}

TEST_F(InterruptTest, InterruptSealsAndResumeIsByteIdentical)
{
    const std::string path =
        testing::TempDir() + "cbws_interrupt_resume.ckpt";
    std::remove(path.c_str());

    // Interrupted run: the flag is already set, so the matrix drains
    // immediately — but the checkpoint must still be opened, sealed
    // and left resumable (this is the SIGINT-mid-run seam with the
    // race pinned to "before any cell").
    {
        requestMatrixInterrupt();
        MatrixOptions options;
        options.jobs = 1;
        options.checkpointPath = path;
        options.onInterrupt =
            MatrixOptions::OnInterrupt::ReturnPartial;
        ExperimentMatrix partial =
            runMatrix(testWorkloads(), kSchemes, SystemConfig(),
                      kInsts, kSeed, options);
        EXPECT_TRUE(partial.interrupted);
    }

    clearMatrixInterrupt();
    MatrixOptions options;
    options.jobs = 1;
    options.checkpointPath = path;
    ExperimentMatrix resumed =
        runMatrix(testWorkloads(), kSchemes, SystemConfig(), kInsts,
                  kSeed, options);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(toJson(serve::flattenMatrix(resumed)), cleanRunJson());
    std::remove(path.c_str());
}

TEST_F(InterruptTest, PartialCellsSurviveAndAreNotResimulated)
{
    // Manufacture a genuinely partial checkpoint through the serve
    // worker (shard 0 of 2 = half the cells), then point runMatrix at
    // it: the recorded cells must be restored, the rest simulated,
    // and the result byte-identical to a clean run — the cross-layer
    // guarantee the whole serving design leans on.
    serve::JobSpec spec;
    spec.workloads = {"nw", "fft-simlarge"};
    spec.schemes = kSchemes;
    spec.insts = kInsts;
    spec.seed = kSeed;

    // The daemon creates the job dir before forking workers; mirror
    // that here.
    const std::string job_dir =
        testing::TempDir() + "cbws_interrupt_shard";
    ::mkdir(job_dir.c_str(), 0755);
    const std::string path = serve::shardCheckpointPath(job_dir, 0);
    std::remove(path.c_str());
    ASSERT_EQ(serve::runWorkerShard(spec, job_dir, 0, 2, -1), 0);

    {
        Checkpoint ckpt;
        ASSERT_TRUE(
            ckpt.open(path, serve::shardHeader(spec)).ok());
        EXPECT_EQ(ckpt.resumedCells(), 2u); // half of 2x2
    }

    clearMatrixInterrupt();
    MatrixOptions options;
    options.jobs = 1;
    options.checkpointPath = path;
    ExperimentMatrix resumed =
        runMatrix(testWorkloads(), kSchemes, SystemConfig(), kInsts,
                  kSeed, options);
    EXPECT_EQ(toJson(serve::flattenMatrix(resumed)), cleanRunJson());
    std::remove(path.c_str());
}

} // namespace
} // namespace cbws
