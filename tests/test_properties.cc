/**
 * @file
 * Property-style tests: invariants that must hold for every
 * prefetcher, every CBWS configuration, and randomly generated access
 * streams (parameterised gtest sweeps).
 */

#include <gtest/gtest.h>

#include "core/cbws_prefetcher.hh"
#include "mem/hierarchy.hh"
#include "sim/experiment.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

// ---- Property: every prefetcher behaves sanely on random traces ----

class PrefetcherPropertyTest
    : public testing::TestWithParam<PrefetcherKind>
{
};

TEST_P(PrefetcherPropertyTest, SurvivesRandomAccessStream)
{
    SystemConfig cfg;
    cfg.prefetcher = GetParam();
    auto pf = makePrefetcher(cfg);
    MockSink sink;
    Random rng(99);
    for (int i = 0; i < 3000; ++i) {
        if (rng.chance(0.05))
            pf->blockBegin(static_cast<BlockId>(rng.below(4)), sink);
        if (rng.chance(0.05))
            pf->blockEnd(static_cast<BlockId>(rng.below(4)), sink);
        auto ctx = memCtx(0x400 + rng.below(64) * 4,
                          rng.below(1ull << 30), rng.chance(0.3),
                          rng.chance(0.5), rng.chance(0.5));
        pf->observeAccess(ctx, sink);
        pf->observeCommit(ctx, sink);
    }
    SUCCEED();
}

TEST_P(PrefetcherPropertyTest, NeverIssuesCachedLines)
{
    // Prefetchers consult isCached() before issuing: a sink claiming
    // everything is cached must see zero issues.
    SystemConfig cfg;
    cfg.prefetcher = GetParam();
    auto pf = makePrefetcher(cfg);

    class AllCachedSink : public PrefetchSink
    {
      public:
        void issuePrefetch(LineAddr, PfSource) override { ++issued; }
        bool isCached(LineAddr) const override { return true; }
        unsigned issued = 0;
    } sink;

    for (int b = 0; b < 40; ++b) {
        pf->blockBegin(1, sink);
        for (int j = 0; j < 3; ++j) {
            auto ctx = memCtx(0x400 + j * 4,
                              (1000 + b * 4ull + j * 2000) * 64);
            pf->observeAccess(ctx, sink);
            pf->observeCommit(ctx, sink);
        }
        pf->blockEnd(1, sink);
    }
    EXPECT_EQ(sink.issued, 0u);
}

TEST_P(PrefetcherPropertyTest, EndToEndInvariants)
{
    auto w = findWorkload("433.milc-su3imp");
    WorkloadParams params;
    params.maxInstructions = 15000;
    Trace t;
    w->generate(t, params);

    SystemConfig cfg;
    cfg.prefetcher = GetParam();
    SimResult r = simulate(t, cfg, params.maxInstructions);

    const auto &m = r.mem;
    // Classified accesses never exceed the demand L2 access count
    // (wrong prefetches are counted separately and may exceed it).
    std::uint64_t classified = 0;
    for (int c = 1; c < static_cast<int>(DemandClass::NumClasses);
         ++c) {
        classified += m.classCounts[c];
    }
    EXPECT_LE(classified, m.demandL2Accesses);
    // Misses cannot exceed demand accesses; traffic is line-granular.
    EXPECT_LE(m.llcDemandMisses, m.demandL2Accesses);
    EXPECT_EQ(m.dramBytesRead % LineBytes, 0u);
    EXPECT_EQ(m.dramBytesWritten % LineBytes, 0u);
    // Issued prefetches are bounded by requests.
    EXPECT_LE(m.prefetchesIssued, m.prefetchesRequested);
    EXPECT_LE(m.prefetchesFiltered + m.prefetchesDropped +
                  m.prefetchesIssued,
              m.prefetchesRequested + m.prefetchesIssued);
    // The core committed what was asked.
    EXPECT_EQ(r.core.instructions, params.maxInstructions);
    EXPECT_GE(r.core.cycles, params.maxInstructions / 4);
    EXPECT_GE(r.core.loopCycles, 0u);
    EXPECT_LE(r.core.loopCycles, r.core.cycles);
}

TEST_P(PrefetcherPropertyTest, LifecycleConservationLaws)
{
    // Every tracked prefetch resolves exactly once: with no warmup
    // window (stats are never reset mid-run), the finalized lifecycle
    // counters of every source must satisfy
    //
    //   issued == dropped + merged + filled
    //   filled == demandHitTimely + demandHitLate
    //             + evictedUnused + residentAtEnd
    //
    // across several workloads and both core models.
    for (const char *wname :
         {"433.milc-su3imp", "sgemm-medium", "fft-simlarge"}) {
        auto w = findWorkload(wname);
        ASSERT_NE(w, nullptr) << wname;
        WorkloadParams params;
        params.maxInstructions = 12000;
        Trace t;
        w->generate(t, params);

        for (CoreModel model :
             {CoreModel::OutOfOrder, CoreModel::InOrder}) {
            SystemConfig cfg;
            cfg.prefetcher = GetParam();
            cfg.coreModel = model;
            SimResult r = simulate(t, cfg, params.maxInstructions,
                                   SimProbes(), /*warmup_insts=*/0);

            std::uint64_t any_issued = 0;
            for (unsigned s = 0; s < NumPfSources; ++s) {
                const PrefetchLifecycle &life = r.mem.pfLife[s];
                const char *src =
                    toString(static_cast<PfSource>(s));
                EXPECT_EQ(life.issued,
                          life.dropped + life.merged + life.filled)
                    << wname << " src=" << src;
                EXPECT_EQ(life.filled,
                          life.demandHitTimely + life.demandHitLate +
                              life.evictedUnused + life.residentAtEnd)
                    << wname << " src=" << src;
                any_issued += life.issued;
            }
            // The lifecycle view must agree with the flat counters.
            EXPECT_EQ(any_issued, r.mem.prefetchesRequested);
            const PrefetchLifecycle total = r.mem.pfLifeTotal();
            EXPECT_EQ(total.filled, r.mem.prefetchesIssued);
            // The lateness histogram records one entry per demand hit.
            std::uint64_t hist = 0;
            for (unsigned b = 0; b < LatenessBuckets; ++b)
                hist += r.mem.latenessHist[b];
            EXPECT_EQ(hist, total.demandHits());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PrefetcherPropertyTest,
    testing::ValuesIn(allPrefetcherKinds()),
    [](const testing::TestParamInfo<PrefetcherKind> &param_info) {
        std::string s = toString(param_info.param);
        for (char &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });

// ---- Property: CBWS predicts constant strides for any geometry ----

struct CbwsSweepParam
{
    unsigned maxVectorMembers;
    unsigned numSteps;
    unsigned tableEntries;
    unsigned historyDepth;
};

class CbwsParamSweepTest
    : public testing::TestWithParam<CbwsSweepParam>
{
};

TEST_P(CbwsParamSweepTest, ConstantStridePatternAlwaysLearned)
{
    const auto sweep = GetParam();
    CbwsParams params;
    params.maxVectorMembers = sweep.maxVectorMembers;
    params.numSteps = sweep.numSteps;
    params.tableEntries = sweep.tableEntries;
    params.historyDepth = sweep.historyDepth;
    CbwsPrefetcher pf(params);
    MockSink sink;

    const unsigned lines_per_block = 3;
    for (unsigned b = 0; b < 40; ++b) {
        pf.blockBegin(1, sink);
        for (unsigned j = 0; j < lines_per_block; ++j) {
            pf.observeCommit(
                memCtx(0x400 + j * 4,
                       (10000 * (j + 1) + b * (j + 2)) * 64ull),
                sink);
        }
        pf.blockEnd(1, sink);
    }
    const auto &s = pf.schemeStats();
    EXPECT_EQ(s.blocksCompleted, 40u);
    EXPECT_GT(s.tableHits, 0u);
    EXPECT_GT(s.linesPredicted, 0u);
    // Step-1 prediction of the next block's first stream.
    EXPECT_TRUE(sink.wasIssued(10000 + 40ull * 2));
}

TEST_P(CbwsParamSweepTest, StorageScalesWithGeometry)
{
    const auto sweep = GetParam();
    CbwsParams params;
    params.maxVectorMembers = sweep.maxVectorMembers;
    params.numSteps = sweep.numSteps;
    params.tableEntries = sweep.tableEntries;
    params.historyDepth = sweep.historyDepth;
    CbwsPrefetcher pf(params);
    // Sanity: strictly positive and monotone in the table size.
    CbwsParams bigger = params;
    bigger.tableEntries *= 2;
    EXPECT_GT(CbwsPrefetcher(bigger).storageBits(),
              pf.storageBits());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CbwsParamSweepTest,
    testing::Values(CbwsSweepParam{16, 4, 16, 4},  // paper default
                    CbwsSweepParam{8, 4, 16, 4},   // narrow vectors
                    CbwsSweepParam{32, 4, 16, 4},  // wide vectors
                    CbwsSweepParam{16, 1, 16, 4},  // single step
                    CbwsSweepParam{16, 8, 16, 4},  // deep steps
                    CbwsSweepParam{16, 4, 4, 4},   // tiny table
                    CbwsSweepParam{16, 4, 64, 4},  // big table
                    CbwsSweepParam{16, 4, 16, 2},  // short history
                    CbwsSweepParam{16, 4, 16, 8}), // long history
    [](const testing::TestParamInfo<CbwsSweepParam> &param_info) {
        return "v" + std::to_string(param_info.param.maxVectorMembers) +
               "_s" + std::to_string(param_info.param.numSteps) + "_t" +
               std::to_string(param_info.param.tableEntries) + "_h" +
               std::to_string(param_info.param.historyDepth);
    });

// ---- Property: hierarchy invariants under random demand load ----

class HierarchyRandomTest : public testing::TestWithParam<unsigned>
{
};

TEST_P(HierarchyRandomTest, InvariantsUnderRandomTraffic)
{
    HierarchyParams params;
    Hierarchy mem(params);
    Random rng(GetParam());
    Cycle now = 0;
    std::uint64_t ok_loads = 0;
    for (int i = 0; i < 5000; ++i) {
        now += rng.below(5);
        mem.tick(now);
        const Addr addr = rng.below(1 << 22) * 8;
        if (rng.chance(0.1)) {
            mem.enqueuePrefetch(lineOf(rng.below(1 << 22) * 8));
        } else if (rng.chance(0.3)) {
            mem.store(addr, now);
        } else {
            auto out = mem.load(addr, now);
            if (out.ok) {
                ++ok_loads;
                EXPECT_GE(out.readyAt, now + params.l1d.latency);
                EXPECT_LE(out.readyAt,
                          now + params.l1d.latency * 2 +
                              params.l2.latency + params.dramLatency);
            }
        }
    }
    mem.finalize();
    const auto &s = mem.stats();
    EXPECT_GT(ok_loads, 0u);
    EXPECT_LE(s.l1dMisses, s.l1dAccesses);
    EXPECT_LE(s.llcDemandMisses, s.demandL2Accesses);
    EXPECT_EQ(s.dramBytesRead % LineBytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyRandomTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- Property: random-but-wellformed traces through the full
// simulator, every scheme (including the extensions) ----

class SimulatorFuzzTest
    : public testing::TestWithParam<PrefetcherKind>
{
};

TEST_P(SimulatorFuzzTest, RandomTraceRunsToCompletion)
{
    Random rng(1234 + static_cast<unsigned>(GetParam()));
    Trace t;
    Addr pc = 0x400000;
    bool in_block = false;
    while (t.size() < 6000) {
        const double roll = rng.real();
        if (roll < 0.05) {
            if (!in_block) {
                t.append(TraceRecord::blockBegin(
                    pc, static_cast<BlockId>(rng.below(3))));
                in_block = true;
            } else {
                t.append(TraceRecord::blockEnd(
                    pc, static_cast<BlockId>(rng.below(3))));
                in_block = false;
            }
        } else if (roll < 0.35) {
            t.append(TraceRecord::load(
                pc, 0x1000000 + rng.below(1 << 24),
                static_cast<RegIndex>(rng.below(32)),
                static_cast<RegIndex>(rng.below(32))));
        } else if (roll < 0.45) {
            t.append(TraceRecord::store(
                pc, 0x1000000 + rng.below(1 << 24),
                static_cast<RegIndex>(rng.below(32))));
        } else if (roll < 0.55) {
            t.append(TraceRecord::branch(pc, rng.chance(0.5),
                                         0x400000 +
                                             rng.below(256) * 4));
        } else {
            t.append(TraceRecord::alu(
                pc, static_cast<RegIndex>(rng.below(32)),
                static_cast<RegIndex>(rng.below(32))));
        }
        pc = 0x400000 + rng.below(256) * 4;
    }

    SystemConfig cfg;
    cfg.prefetcher = GetParam();
    SimResult r = simulate(t, cfg, 5000);
    EXPECT_EQ(r.core.instructions, 5000u);
    EXPECT_GT(r.core.cycles, 0u);

    // The in-order core must also survive the same stream.
    cfg.coreModel = CoreModel::InOrder;
    SimResult io = simulate(t, cfg, 5000);
    EXPECT_EQ(io.core.instructions, 5000u);
}

INSTANTIATE_TEST_SUITE_P(
    ExtendedKinds, SimulatorFuzzTest,
    testing::ValuesIn(extendedPrefetcherKinds()),
    [](const testing::TestParamInfo<PrefetcherKind> &param_info) {
        std::string s = toString(param_info.param);
        for (char &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });

// ---- Property: identical traces, identical results per scheme ----

TEST(Determinism, WholeMatrixIsReproducible)
{
    std::vector<WorkloadPtr> ws;
    ws.push_back(findWorkload("fft-simlarge"));
    const std::vector<PrefetcherKind> kinds = {PrefetcherKind::Cbws,
                                               PrefetcherKind::Sms};
    SystemConfig cfg;
    auto m1 = runMatrix(ws, kinds, cfg, 8000);
    ws.clear();
    ws.push_back(findWorkload("fft-simlarge"));
    auto m2 = runMatrix(ws, kinds, cfg, 8000);
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        EXPECT_EQ(m1.rows[0].byPrefetcher[k].core.cycles,
                  m2.rows[0].byPrefetcher[k].core.cycles);
        EXPECT_EQ(m1.rows[0].byPrefetcher[k].mem.llcDemandMisses,
                  m2.rows[0].byPrefetcher[k].mem.llcDemandMisses);
    }
}

} // anonymous namespace
} // namespace cbws
