/**
 * @file
 * Unit tests for the set-associative tag array: lookup, replacement,
 * dirty bits and the prefetch bookkeeping driving Fig. 13.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace cbws
{
namespace
{

CacheParams
tinyCache(unsigned assoc = 2, std::uint64_t sets = 4,
          ReplPolicy repl = ReplPolicy::LRU)
{
    CacheParams p;
    p.name = "tiny";
    p.assoc = assoc;
    p.sizeBytes = sets * assoc * LineBytes;
    p.repl = repl;
    return p;
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(1, 0, false));
    c.insert(1, 0, false);
    EXPECT_TRUE(c.access(1, 1, false));
    EXPECT_TRUE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(tinyCache(/*assoc=*/2, /*sets=*/1));
    c.insert(10, 0, false);
    c.insert(20, 1, false);
    // Touch 10 so 20 becomes LRU.
    EXPECT_TRUE(c.access(10, 2, false));
    const auto victim = c.insert(30, 3, false);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, 20u);
    EXPECT_TRUE(c.contains(10));
    EXPECT_TRUE(c.contains(30));
    EXPECT_FALSE(c.contains(20));
}

TEST(Cache, InsertPrefersInvalidWay)
{
    Cache c(tinyCache(/*assoc=*/4, /*sets=*/1));
    for (LineAddr l = 0; l < 4; ++l) {
        const auto victim = c.insert(l * 4, l, false);
        EXPECT_FALSE(victim.valid);
    }
    const auto victim = c.insert(100, 10, false);
    EXPECT_TRUE(victim.valid);
}

TEST(Cache, SetIndexingSeparatesSets)
{
    Cache c(tinyCache(/*assoc=*/1, /*sets=*/4));
    // Lines 0..3 map to distinct sets; no evictions.
    for (LineAddr l = 0; l < 4; ++l)
        EXPECT_FALSE(c.insert(l, l, false).valid);
    // Line 4 conflicts with line 0 (same set).
    const auto victim = c.insert(4, 9, false);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, 0u);
}

TEST(Cache, DirtyBitTravelsWithVictim)
{
    Cache c(tinyCache(/*assoc=*/1, /*sets=*/1));
    c.insert(1, 0, false);
    c.access(1, 1, /*is_write=*/true);
    const auto victim = c.insert(2, 2, false);
    ASSERT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
}

TEST(Cache, SetDirtyExplicit)
{
    Cache c(tinyCache(/*assoc=*/1, /*sets=*/1));
    c.insert(1, 0, false);
    c.setDirty(1);
    const auto victim = c.insert(2, 1, false);
    EXPECT_TRUE(victim.dirty);
    // setDirty on an absent line is a no-op.
    c.setDirty(99);
}

TEST(Cache, PrefetchedUnusedTracking)
{
    Cache c(tinyCache(/*assoc=*/2, /*sets=*/1));
    c.insert(1, 0, /*prefetched=*/true);
    EXPECT_TRUE(c.isUnusedPrefetch(1));
    EXPECT_EQ(c.countUnusedPrefetched(), 1u);
    // A demand access consumes the prefetch.
    EXPECT_TRUE(c.access(1, 1, false));
    EXPECT_FALSE(c.isUnusedPrefetch(1));
    EXPECT_EQ(c.countUnusedPrefetched(), 0u);
}

TEST(Cache, UnusedPrefetchVictimReported)
{
    Cache c(tinyCache(/*assoc=*/1, /*sets=*/1));
    c.insert(1, 0, /*prefetched=*/true);
    const auto victim = c.insert(2, 1, false);
    ASSERT_TRUE(victim.valid);
    EXPECT_TRUE(victim.prefetched);
    EXPECT_FALSE(victim.usedAfterPrefetch);
}

TEST(Cache, Invalidate)
{
    Cache c(tinyCache());
    c.insert(5, 0, false);
    c.access(5, 1, true);
    const auto info = c.invalidate(5);
    ASSERT_TRUE(info.valid);
    EXPECT_TRUE(info.dirty);
    EXPECT_FALSE(c.contains(5));
    // Invalidating an absent line reports invalid.
    EXPECT_FALSE(c.invalidate(5).valid);
}

TEST(Cache, RandomReplacementStillCorrect)
{
    Cache c(tinyCache(/*assoc=*/2, /*sets=*/1,
                      ReplPolicy::RandomRepl));
    c.insert(1, 0, false);
    c.insert(2, 1, false);
    const auto victim = c.insert(3, 2, false);
    ASSERT_TRUE(victim.valid);
    EXPECT_TRUE(victim.line == 1 || victim.line == 2);
    EXPECT_TRUE(c.contains(3));
    // Exactly one of {1,2} survives.
    EXPECT_NE(c.contains(1), c.contains(2));
}

TEST(Cache, ReinsertRefreshes)
{
    Cache c(tinyCache(/*assoc=*/2, /*sets=*/1));
    c.insert(1, 0, false);
    c.insert(2, 1, false);
    // Refill of a resident line must not evict anything.
    const auto victim = c.insert(1, 2, false);
    EXPECT_FALSE(victim.valid);
    EXPECT_TRUE(c.contains(1));
    EXPECT_TRUE(c.contains(2));
}

TEST(Cache, RejectsBadGeometry)
{
    CacheParams p;
    p.sizeBytes = 3 * LineBytes; // 3 sets at assoc 1: not a power of 2
    p.assoc = 1;
    EXPECT_EXIT({ Cache c(p); }, testing::ExitedWithCode(1), "");
}

TEST(Cache, Table2Geometries)
{
    // The Table II caches must construct with the right set counts.
    CacheParams l1d{"L1D", 32 * 1024, 4, 2, 4, ReplPolicy::LRU};
    EXPECT_EQ(Cache(l1d).numSets(), 128u);
    CacheParams l2{"L2", 2 * 1024 * 1024, 8, 30, 32, ReplPolicy::LRU};
    EXPECT_EQ(Cache(l2).numSets(), 4096u);
}

} // anonymous namespace
} // namespace cbws
