/**
 * @file
 * Tests for the synthetic workload kernels and the registry: every
 * benchmark of the paper's evaluation must exist, generate
 * deterministic, well-formed annotated traces, and respect the
 * instruction budget.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/registry.hh"

namespace cbws
{
namespace
{

TEST(Registry, ThirtySixBenchmarks)
{
    EXPECT_EQ(allWorkloads().size(), 36u);
    EXPECT_EQ(memoryIntensiveWorkloads().size(), 15u);
    EXPECT_EQ(lowMpkiWorkloads().size(), 15u);
    EXPECT_EQ(dbmsWorkloads().size(), 6u);
}

TEST(Registry, NamesUniqueAndGroupsConsistent)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        EXPECT_TRUE(names.insert(w->name()).second)
            << "duplicate workload name: " << w->name();
    for (const auto &w : memoryIntensiveWorkloads())
        EXPECT_TRUE(w->memoryIntensive());
    for (const auto &w : lowMpkiWorkloads())
        EXPECT_FALSE(w->memoryIntensive());
}

TEST(Registry, Table4MembersPresent)
{
    // The paper's Table IV memory-intensive list.
    const char *mi[] = {
        "429.mcf-ref",     "450.soplex-ref",
        "462.libquantum-ref", "433.milc-su3imp",
        "401.bzip2-source", "mri-q-large",
        "histo-large",     "stencil-default",
        "sgemm-medium",    "nw",
        "lbm-long",        "lu-ncb-simlarge",
        "fft-simlarge",    "radix-simlarge",
        "streamcluster-simlarge",
    };
    for (const char *name : mi) {
        auto w = findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        EXPECT_TRUE(w->memoryIntensive()) << name;
    }
}

TEST(Registry, FindUnknownReturnsNull)
{
    EXPECT_EQ(findWorkload("not-a-benchmark"), nullptr);
}

class WorkloadTraceTest
    : public testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTraceTest, GeneratesWellFormedTrace)
{
    auto w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);

    WorkloadParams params;
    params.maxInstructions = 12000;
    Trace t;
    w->generate(t, params);

    // Budget respected (with the emitter's small slack).
    EXPECT_GE(t.size(), params.maxInstructions);
    EXPECT_LE(t.size(), params.maxInstructions + 512);

    // Block markers are balanced and non-nested, with stable ids.
    int depth = 0;
    std::set<BlockId> ids;
    std::size_t mem_ops = 0;
    std::size_t in_block_mem = 0;
    for (const auto &rec : t) {
        switch (rec.cls) {
          case InstClass::BlockBegin:
            ASSERT_EQ(depth, 0) << "nested BLOCK_BEGIN";
            ids.insert(rec.blockId);
            ++depth;
            break;
          case InstClass::BlockEnd:
            ASSERT_EQ(depth, 1) << "unpaired BLOCK_END";
            --depth;
            break;
          case InstClass::Load:
          case InstClass::Store:
            ++mem_ops;
            in_block_mem += depth;
            EXPECT_GT(rec.effAddr, 0x100000u); // inside the heap
            break;
          default:
            break;
        }
    }
    // A possibly unterminated final block is acceptable.
    EXPECT_LE(depth, 1);
    // Each kernel uses one static block id for its innermost loop.
    EXPECT_GE(ids.size(), 1u);
    // Kernels are memory workloads: a meaningful share of memory ops,
    // most of them inside annotated blocks.
    EXPECT_GT(mem_ops, t.size() / 20);
    EXPECT_GT(in_block_mem * 2, mem_ops);
}

TEST_P(WorkloadTraceTest, DeterministicForSameSeed)
{
    auto w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    WorkloadParams params;
    params.maxInstructions = 4000;
    Trace a, b;
    w->generate(a, params);
    w->generate(b, params);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].effAddr, b[i].effAddr);
        EXPECT_EQ(a[i].cls, b[i].cls);
    }
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : allWorkloads())
        names.push_back(w->name());
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadTraceTest,
    testing::ValuesIn(allWorkloadNames()),
    [](const testing::TestParamInfo<std::string> &param_info) {
        std::string s = param_info.param;
        for (char &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });

TEST(Workloads, BranchOutcomesVary)
{
    // Kernels with divergent branches must actually diverge (the
    // branch predictor should not see constant outcomes everywhere).
    auto w = findWorkload("450.soplex-ref");
    WorkloadParams params;
    params.maxInstructions = 10000;
    Trace t;
    w->generate(t, params);
    std::size_t taken = 0, total = 0;
    for (const auto &rec : t) {
        if (rec.cls != InstClass::Branch)
            continue;
        ++total;
        taken += rec.taken;
    }
    ASSERT_GT(total, 100u);
    EXPECT_GT(taken, total / 10);
    EXPECT_LT(taken, total - total / 10);
}

TEST(Workloads, DifferentSeedsChangeDataDependentStreams)
{
    auto w = findWorkload("histo-large");
    WorkloadParams p1, p2;
    p1.maxInstructions = p2.maxInstructions = 4000;
    p1.seed = 1;
    p2.seed = 2;
    Trace a, b;
    w->generate(a, p1);
    w->generate(b, p2);
    bool any_diff = false;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n && !any_diff; ++i)
        any_diff = a[i].effAddr != b[i].effAddr;
    EXPECT_TRUE(any_diff);
}

} // anonymous namespace
} // namespace cbws
