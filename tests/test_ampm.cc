/**
 * @file
 * Unit tests for the AMPM (access map pattern matching) extension
 * prefetcher.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "prefetch/ampm.hh"
#include "test_util.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

TEST(Ampm, UnitStrideStreamPredicted)
{
    AmpmPrefetcher pf;
    MockSink sink;
    const Addr zone_base = 0x100000; // zone-aligned
    for (unsigned l = 0; l < 6; ++l)
        pf.observeAccess(memCtx(0x400, zone_base + l * 64ull), sink);
    // After lines 0,1,2 are mapped, accesses pattern-match stride 1.
    EXPECT_TRUE(sink.wasIssued(lineOf(zone_base) + 6));
}

TEST(Ampm, StridedPatternWithinZone)
{
    AmpmPrefetcher pf;
    MockSink sink;
    const Addr zone_base = 0x200000;
    // Stride-3 lines: 0, 3, 6, 9...
    for (unsigned i = 0; i < 5; ++i) {
        pf.observeAccess(
            memCtx(0x400, zone_base + i * 3ull * 64), sink);
    }
    EXPECT_TRUE(sink.wasIssued(lineOf(zone_base) + 15));
}

TEST(Ampm, BackwardStreamPredicted)
{
    AmpmPrefetcher pf;
    MockSink sink;
    const Addr zone_base = 0x300000;
    for (int l = 30; l >= 24; --l)
        pf.observeAccess(memCtx(0x400, zone_base + l * 64ull), sink);
    EXPECT_TRUE(sink.wasIssued(lineOf(zone_base) + 23));
}

TEST(Ampm, PcBlindAcrossInstructions)
{
    // The map is per-zone, not per-PC: accesses from different PCs
    // build one pattern (the property the paper contrasts against).
    AmpmPrefetcher pf;
    MockSink sink;
    const Addr zone_base = 0x400000;
    for (unsigned l = 0; l < 6; ++l) {
        pf.observeAccess(
            memCtx(0x400 + l * 4, zone_base + l * 64ull), sink);
    }
    EXPECT_FALSE(sink.issued.empty());
}

TEST(Ampm, NoCrossZoneLeakage)
{
    AmpmPrefetcher pf;
    MockSink sink;
    // Stream right up to a zone boundary: predictions never target
    // the next zone (single-zone matching).
    const Addr zone_base = 0x500000;
    const unsigned last = pf.linesPerZone() - 1;
    for (unsigned l = last - 5; l <= last; ++l)
        pf.observeAccess(memCtx(0x400, zone_base + l * 64ull), sink);
    for (LineAddr line : sink.issued)
        EXPECT_LT(line, lineOf(zone_base) + pf.linesPerZone());
}

TEST(Ampm, MapEvictionLru)
{
    AmpmParams params;
    params.mapEntries = 2;
    AmpmPrefetcher pf(params);
    MockSink sink;
    // Build a pattern in zone A, then touch two other zones to evict
    // it; a new access in zone A must start cold (no prediction).
    const Addr a = 0x600000, b = 0x700000, c = 0x800000;
    for (unsigned l = 0; l < 4; ++l)
        pf.observeAccess(memCtx(0x400, a + l * 64ull), sink);
    pf.observeAccess(memCtx(0x400, b), sink);
    pf.observeAccess(memCtx(0x400, c), sink);
    sink.issued.clear();
    pf.observeAccess(memCtx(0x400, a + 4 * 64ull), sink);
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Ampm, TrainsOnMissesOnly)
{
    AmpmPrefetcher pf;
    MockSink sink;
    for (unsigned l = 0; l < 8; ++l) {
        pf.observeAccess(memCtx(0x400, 0x900000 + l * 64ull, false,
                                true, /*l2_miss=*/false),
                         sink);
    }
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Ampm, DegreeBoundsIssuesPerAccess)
{
    AmpmParams params;
    params.degree = 1;
    AmpmPrefetcher pf(params);
    MockSink sink;
    const Addr zone_base = 0xA00000;
    for (unsigned l = 0; l < 10; ++l) {
        sink.issued.clear();
        pf.observeAccess(memCtx(0x400, zone_base + l * 64ull), sink);
        EXPECT_LE(sink.issued.size(), 1u);
    }
}

TEST(Ampm, RandomAccessesStayMostlyQuiet)
{
    AmpmPrefetcher pf;
    MockSink sink;
    Random rng(4);
    for (int i = 0; i < 500; ++i) {
        pf.observeAccess(
            memCtx(0x400, 0xB00000 + rng.below(1 << 22)), sink);
    }
    // Random offsets occasionally alias a stride triple; stays low.
    EXPECT_LT(sink.issued.size(), 150u);
}

TEST(Ampm, StorageAccounting)
{
    AmpmPrefetcher pf;
    // 64 entries x (36-bit tag + 64 map bits) = 6400 bits.
    EXPECT_EQ(pf.storageBits(), 64u * (36u + 64u));
    EXPECT_LT(pf.storageBits() / 8 / 1024.0, 1.0);
}

TEST(Ampm, RejectsBadZoneSize)
{
    AmpmParams params;
    params.zoneBytes = 100;
    EXPECT_EXIT({ AmpmPrefetcher pf(params); },
                testing::ExitedWithCode(1), "");
}

} // anonymous namespace
} // namespace cbws
