/**
 * @file
 * Unit tests for the scalar in-order core model (extension).
 */

#include <gtest/gtest.h>

#include "cpu/inorder.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

TEST(InOrderCore, ScalarThroughputBound)
{
    Trace t;
    for (int i = 0; i < 2000; ++i)
        t.append(TraceRecord::alu(0x400000 + (i % 8) * 4,
                                  static_cast<RegIndex>(8 + i % 16)));
    HierarchyParams hp;
    Hierarchy mem(hp);
    InOrderCore core(CoreParams(), mem);
    auto st = core.run(t, 2000);
    EXPECT_EQ(st.instructions, 2000u);
    EXPECT_LE(st.ipc(), 1.0); // scalar: at most one per cycle
    EXPECT_GT(st.ipc(), 0.7); // independent ALUs run near peak
}

TEST(InOrderCore, StallOnUseNotOnIssue)
{
    // A load followed by independent ALUs, then the consumer: the
    // ALUs overlap the miss; the consumer pays it.
    auto run = [](unsigned independent_alus) {
        Trace t;
        t.append(TraceRecord::load(0x400000, 0x1000000, 3));
        for (unsigned i = 0; i < independent_alus; ++i)
            t.append(TraceRecord::alu(0x400004, 8));
        t.append(TraceRecord::alu(0x400008, 4, 3)); // consumer
        HierarchyParams hp;
        Hierarchy mem(hp);
        InOrderCore core(CoreParams(), mem);
        return core.run(t, t.size()).cycles;
    };
    // Extra independent work is (almost) free under the miss.
    EXPECT_LE(run(100), run(0) + 110);
    EXPECT_GE(run(0), 300u); // the consumer waited for DRAM
}

TEST(InOrderCore, LoadsOverlapUpToMshrs)
{
    Trace t;
    const unsigned n = 64;
    for (unsigned i = 0; i < n; ++i) {
        t.append(TraceRecord::load(0x400000,
                                   0x1000000 + i * 64ull,
                                   static_cast<RegIndex>(8 + i % 8)));
    }
    HierarchyParams hp;
    Hierarchy mem(hp);
    InOrderCore core(CoreParams(), mem);
    auto st = core.run(t, n);
    // Independent loads overlap through the 4 L1 MSHRs.
    const double serial = n * 334.0;
    EXPECT_LT(st.cycles, serial / 2);
}

TEST(InOrderCore, MispredictPenaltyApplied)
{
    auto run = [](bool predictable) {
        Trace t;
        std::uint64_t x = 55;
        for (int i = 0; i < 1000; ++i) {
            t.append(TraceRecord::alu(0x400000, 3));
            bool taken = true;
            if (!predictable) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                taken = (x & 1) != 0;
            }
            t.append(TraceRecord::branch(0x400004, taken, 0x400000));
        }
        HierarchyParams hp;
        Hierarchy mem(hp);
        InOrderCore core(CoreParams(), mem);
        return core.run(t, t.size());
    };
    EXPECT_GT(run(false).cycles, run(true).cycles * 2);
}

TEST(InOrderCore, HooksFireInProgramOrder)
{
    Trace t;
    t.append(TraceRecord::blockBegin(0x400000, 3));
    t.append(TraceRecord::load(0x400004, 0x1000000, 3));
    t.append(TraceRecord::store(0x400008, 0x2000000, 3));
    t.append(TraceRecord::blockEnd(0x40000c, 3));
    HierarchyParams hp;
    Hierarchy mem(hp);
    InOrderCore core(CoreParams(), mem);
    std::vector<InstClass> commits;
    unsigned accesses = 0;
    core.run(
        t, t.size(),
        [&](const TraceRecord &rec, const AccessOutcome &, Cycle) {
            commits.push_back(rec.cls);
        },
        [&](const TraceRecord &, const AccessOutcome &, Cycle) {
            ++accesses;
        });
    ASSERT_EQ(commits.size(), 4u);
    EXPECT_EQ(commits[0], InstClass::BlockBegin);
    EXPECT_EQ(commits[3], InstClass::BlockEnd);
    EXPECT_EQ(accesses, 2u);
}

TEST(InOrderCore, EndToEndThroughConfig)
{
    auto w = findWorkload("stencil-default");
    WorkloadParams params;
    params.maxInstructions = 20000;
    Trace trace;
    w->generate(trace, params);

    SystemConfig ooo_cfg, io_cfg;
    io_cfg.coreModel = CoreModel::InOrder;
    SimResult ooo = simulate(trace, ooo_cfg, params.maxInstructions);
    SimResult io = simulate(trace, io_cfg, params.maxInstructions);
    // The OoO core hides more latency than the scalar in-order one.
    EXPECT_GT(ooo.ipc(), io.ipc());
    EXPECT_GT(io.ipc(), 0.0);
}

TEST(InOrderCore, PrefetchingHelpsMoreThanOnOoO)
{
    // The extension's headline: relative prefetch benefit is larger
    // on the in-order core (no OoO latency tolerance).
    auto w = findWorkload("sgemm-medium");
    WorkloadParams params;
    params.maxInstructions = 30000;
    Trace trace;
    w->generate(trace, params);

    auto speedup = [&](CoreModel model) {
        SystemConfig none_cfg, pf_cfg;
        none_cfg.coreModel = pf_cfg.coreModel = model;
        pf_cfg.prefetcher = PrefetcherKind::CbwsSms;
        const double base =
            simulate(trace, none_cfg, params.maxInstructions).ipc();
        const double pf =
            simulate(trace, pf_cfg, params.maxInstructions).ipc();
        return pf / base;
    };
    EXPECT_GT(speedup(CoreModel::InOrder), 1.5);
    EXPECT_GT(speedup(CoreModel::InOrder),
              speedup(CoreModel::OutOfOrder) * 0.8);
}

TEST(InOrderCore, WarmupSubtraction)
{
    Trace t;
    for (int i = 0; i < 2000; ++i)
        t.append(TraceRecord::alu(0x400000, 8));
    HierarchyParams hp;
    Hierarchy mem(hp);
    InOrderCore core(CoreParams(), mem);
    bool fired = false;
    auto st = core.run(t, 2000, nullptr, nullptr, 1000,
                       [&](Cycle) { fired = true; });
    EXPECT_TRUE(fired);
    EXPECT_EQ(st.instructions, 1000u);
}

} // anonymous namespace
} // namespace cbws
