/**
 * @file
 * DRAM backend subsystem: registry round-trip, the `fixed` backend's
 * bit-identity with the legacy flat formula, the `ddr` backend's
 * timing invariants (row hit < row miss, tFAW window, refresh
 * blackouts, write-drain, prefetch deferral, per-bank monotone
 * responses), and matrix-level determinism of `ddr` runs across job
 * counts and checkpoint resume.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "mem/dram/backend.hh"
#include "mem/dram/ddr.hh"
#include "mem/hierarchy.hh"
#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

HierarchyParams
ddrParams()
{
    HierarchyParams p;
    p.dramBackend = "ddr";
    return p;
}

DramRequest
demand(LineAddr line, Cycle arrival)
{
    return DramRequest{line, arrival, false, PfSource::Unknown};
}

DramRequest
prefetch(LineAddr line, Cycle arrival)
{
    return DramRequest{line, arrival, true, PfSource::Cbws};
}

// ---------------------------------------------------------------
// Registry
// ---------------------------------------------------------------

TEST(DramRegistry, BuiltinsAreRegistered)
{
    EXPECT_TRUE(dramBackendRegistry().contains("fixed"));
    EXPECT_TRUE(dramBackendRegistry().contains("ddr"));
    EXPECT_TRUE(dramBackendRegistry().contains("DDR"))
        << "lookup must be case-insensitive";

    const auto names = dramBackendRegistry().names();
    EXPECT_NE(std::find(names.begin(), names.end(), "fixed"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "ddr"),
              names.end());
    EXPECT_FALSE(dramBackendRegistry().describe("ddr").empty());
}

TEST(DramRegistry, CreateRoundTripsAndUnknownNamesAreListed)
{
    HierarchyParams p;
    auto fixed = dramBackendRegistry().create("Fixed", p);
    ASSERT_TRUE(fixed.ok());
    EXPECT_STREQ(fixed.value()->name(), "fixed");

    auto ddr = dramBackendRegistry().create("ddr", ddrParams());
    ASSERT_TRUE(ddr.ok());
    EXPECT_STREQ(ddr.value()->name(), "ddr");

    auto missing = dramBackendRegistry().create("hbm", p);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.code(), Errc::NotFound);
    EXPECT_NE(missing.error().message.find("ddr"),
              std::string::npos)
        << "the error must list the registered backends";
}

// ---------------------------------------------------------------
// fixed: bit-for-bit the legacy flat model
// ---------------------------------------------------------------

TEST(FixedDram, MatchesLegacyFormulaWithoutThrottle)
{
    HierarchyParams p; // dramMinInterval == 0
    auto b = dramBackendRegistry().create("fixed", p);
    ASSERT_TRUE(b.ok());
    for (Cycle t : {Cycle(0), Cycle(7), Cycle(5), Cycle(1000)}) {
        EXPECT_EQ(b.value()->read(demand(t, t)),
                  t + p.dramLatency);
    }
}

TEST(FixedDram, MatchesLegacyThrottleStateMachine)
{
    HierarchyParams p;
    p.dramMinInterval = 10;
    auto created = dramBackendRegistry().create("fixed", p);
    ASSERT_TRUE(created.ok());
    DramBackend &b = *created.value();

    // The legacy formula, replicated verbatim.
    Cycle next_free = 0;
    const Cycle arrivals[] = {0, 3, 4, 50, 52, 51, 200};
    for (Cycle t : arrivals) {
        const Cycle start = std::max(t, next_free);
        next_free = start + p.dramMinInterval;
        EXPECT_EQ(b.read(demand(t, t)), start + p.dramLatency)
            << "arrival " << t;
    }
    EXPECT_EQ(b.stats().reads, 7u);
}

// ---------------------------------------------------------------
// ddr: timing invariants
// ---------------------------------------------------------------

/** Line addresses decoding to (bank, row) under 1-channel default
 *  geometry: consecutive lines share a row; rows stride banks. */
LineAddr
lineAt(const DdrParams &g, std::uint64_t bank, std::uint64_t row,
       std::uint64_t col = 0)
{
    return (row * g.banksPerChannel() + bank) * g.linesPerRow() +
           col;
}

TEST(DdrDram, RowHitIsFasterThanRowMissIsFasterThanNothing)
{
    HierarchyParams p = ddrParams();
    p.ddr.tREFI = 0; // isolate the row-buffer path
    DdrBackend b(p);
    const DdrParams &g = b.timing();

    // Cold access opens (bank 0, row 0).
    const Cycle c0 = b.read(demand(lineAt(g, 0, 0, 0), 0));
    const Cycle closed_latency = c0;
    EXPECT_EQ(b.stats().rowClosed, 1u);

    // Long after it drained: same row, different column -> row hit.
    const Cycle t1 = c0 + 10000;
    const Cycle hit_latency =
        b.read(demand(lineAt(g, 0, 0, 1), t1)) - t1;
    EXPECT_EQ(b.stats().rowHits, 1u);

    // Again idle: same bank, conflicting row -> row miss (PRE+ACT).
    const Cycle t2 = t1 + 20000;
    const Cycle miss_latency =
        b.read(demand(lineAt(g, 0, 1, 0), t2)) - t2;
    EXPECT_EQ(b.stats().rowMisses, 1u);

    EXPECT_LT(hit_latency, closed_latency);
    EXPECT_LT(closed_latency, miss_latency);
    EXPECT_EQ(miss_latency - closed_latency, g.tRP)
        << "a conflict pays exactly the extra precharge";
    EXPECT_EQ(b.stats().bankRowHits[0], 1u);
    EXPECT_EQ(b.stats().bankRowMisses[0], 1u);
}

TEST(DdrDram, TfawNeverAdmitsAFifthActivateInTheWindow)
{
    HierarchyParams p = ddrParams();
    p.ddr.tREFI = 0;
    p.ddr.tFAW = 100000; // make a tFAW stall unmistakable
    DdrBackend b(p);
    const DdrParams &g = b.timing();

    // Five cold activates to five banks of rank 0, same arrival.
    Cycle completion[5];
    for (std::uint64_t i = 0; i < 5; ++i)
        completion[i] = b.read(demand(lineAt(g, i, 0), 0));

    EXPECT_EQ(b.stats().activates, 5u);
    EXPECT_EQ(b.stats().fawStalls, 1u);
    // The first four proceed on bank/bus timing alone...
    EXPECT_LT(completion[3], Cycle(g.tFAW));
    // ...the fifth waits for the window opened by the first ACT.
    EXPECT_GE(completion[4], Cycle(g.tFAW));
}

TEST(DdrDram, RefreshBlackoutDelaysRequestsAndClosesRows)
{
    HierarchyParams p = ddrParams();
    DdrBackend b(p);
    const DdrParams &g = b.timing();
    ASSERT_GT(g.tREFI, 0u);

    // Open a row well before the first refresh.
    const Cycle c0 = b.read(demand(lineAt(g, 0, 0, 0), 0));
    ASSERT_LT(c0, Cycle(g.tREFI));

    // Arrive just inside the first blackout window.
    const Cycle in_blackout = g.tREFI + 1;
    const Cycle c1 = b.read(demand(lineAt(g, 0, 0, 1), in_blackout));
    EXPECT_EQ(b.stats().refreshStalls, 1u);
    EXPECT_GE(c1, Cycle(g.tREFI + g.tRFC));
    // Refresh precharges every bank: the re-access is not a row hit.
    EXPECT_EQ(b.stats().rowHits, 0u);
    EXPECT_EQ(b.stats().rowClosed, 2u);
}

TEST(DdrDram, PrefetchesDeferUnderQueuePressureDemandsDoNot)
{
    HierarchyParams p = ddrParams();
    p.ddr.tREFI = 0;
    p.ddr.prefetchDeferThreshold = 1;
    DdrBackend b(p);
    const DdrParams &g = b.timing();

    // One outstanding demand...
    const Cycle d0 = b.read(demand(lineAt(g, 0, 0, 0), 0));
    // ...a second demand is admitted immediately (no deferral)...
    b.read(demand(lineAt(g, 1, 0, 0), 1));
    EXPECT_EQ(b.stats().prefetchesDeferred, 0u);

    // ...but a prefetch under the same pressure waits out the queue.
    const Cycle pf = b.read(prefetch(lineAt(g, 2, 0, 0), 2));
    EXPECT_EQ(b.stats().prefetchesDeferred, 1u);
    EXPECT_GT(b.stats().deferralCycles, 0u);
    EXPECT_GT(pf, d0);

    // With the queue drained, prefetches are not penalised.
    const Cycle idle = pf + 50000;
    const std::uint64_t deferred = b.stats().prefetchesDeferred;
    b.read(prefetch(lineAt(g, 3, 0, 0), idle));
    EXPECT_EQ(b.stats().prefetchesDeferred, deferred);
}

TEST(DdrDram, WriteDrainBurstDelaysConcurrentReads)
{
    HierarchyParams p = ddrParams();
    p.ddr.tREFI = 0;
    p.ddr.writeHighWatermark = 2;
    p.ddr.writeLowWatermark = 0;

    // Reference: the read alone on an idle backend.
    DdrBackend quiet(p);
    const Cycle alone =
        quiet.read(demand(lineAt(quiet.timing(), 0, 0), 5));

    // Same read right after a drain burst of two writebacks.
    DdrBackend busy(p);
    const DdrParams &g = busy.timing();
    busy.write(lineAt(g, 1, 3), 0);
    busy.write(lineAt(g, 2, 4), 0);
    EXPECT_EQ(busy.stats().writeDrains, 1u);
    EXPECT_EQ(busy.stats().writes, 2u);
    const Cycle contended = busy.read(demand(lineAt(g, 0, 0), 5));
    EXPECT_GT(contended, alone);
}

TEST(DdrDram, ResponsesAreMonotonePerBankAndDeterministic)
{
    HierarchyParams p = ddrParams();
    DdrBackend a(p), b(p);
    const DdrParams &g = a.timing();

    // A deterministic, bursty request stream whose arrivals regress
    // by a few cycles now and then (prefetch vs. demand skew).
    std::uint64_t lcg = 12345;
    auto next = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
    };
    std::vector<Cycle> last(g.totalBanks(), 0);
    Cycle base = 0;
    for (int i = 0; i < 2000; ++i) {
        base += next() % 40;
        const Cycle arrival =
            base >= 3 && next() % 4 == 0 ? base - 3 : base;
        const LineAddr line =
            lineAt(g, next() % g.banksPerChannel(), next() % 8,
                   next() % g.linesPerRow());
        const bool pf = next() % 3 == 0;
        const DramRequest req{line, arrival, pf,
                              pf ? PfSource::Sms
                                 : PfSource::Unknown};
        const Cycle got = a.read(req);
        EXPECT_EQ(got, b.read(req))
            << "two identically-fed backends diverged at " << i;
        ASSERT_GE(got, arrival);

        // Recompute the bank the same way the backend decodes it.
        const std::uint64_t bank =
            (line / g.linesPerRow()) % g.banksPerChannel();
        EXPECT_GE(got, last[bank]) << "bank " << bank
                                   << " response regressed at " << i;
        last[bank] = got;

        if (next() % 5 == 0)
            a.write(line + 1, base), b.write(line + 1, base);
    }
    EXPECT_EQ(a.stats().reads, 2000u);
    EXPECT_TRUE(a.stats() == b.stats());
}

TEST(DdrDram, ResetStatsPreservesGeometryVectors)
{
    DdrBackend b(ddrParams());
    b.read(demand(0, 0));
    ASSERT_FALSE(b.stats().bankRowHits.empty());
    b.resetStats();
    EXPECT_EQ(b.stats().reads, 0u);
    EXPECT_EQ(b.stats().bankRowHits.size(),
              static_cast<std::size_t>(b.timing().totalBanks()));
}

// ---------------------------------------------------------------
// Hierarchy integration + matrix determinism
// ---------------------------------------------------------------

TEST(DdrHierarchy, ColdMissLatencyComposesThroughTheBackend)
{
    Hierarchy mem(ddrParams());
    const auto &p = mem.params();
    auto out = mem.load(0x10000, 0);
    ASSERT_TRUE(out.ok);
    // frontend + ACT+CAS + tCL + burst + backend, plus the cache
    // levels on either side.
    const Cycle dram = p.ddr.frontendLatency + p.ddr.tRCD +
                       p.ddr.tCL + p.ddr.tBURST +
                       p.ddr.backendLatency;
    EXPECT_EQ(out.readyAt, p.l1d.latency + p.l2.latency + dram +
                               p.l1d.latency);
    EXPECT_EQ(mem.stats().dram.reads, 1u);
    EXPECT_STREQ(mem.dram().name(), "ddr");
}

TEST(DdrHierarchy, UnknownBackendNamePanics)
{
    HierarchyParams p;
    p.dramBackend = "no-such-backend";
    EXPECT_DEATH({ Hierarchy mem(p); }, "no DRAM backend");
}

TEST(DdrFingerprint, ConfigTagSeparatesBackends)
{
    const std::vector<std::string> ws{"a"}, ps{"x"};
    const auto untagged = checkpointFingerprint(ws, ps);
    const auto fixed = checkpointFingerprint(ws, ps, "fixed");
    const auto ddr = checkpointFingerprint(ws, ps, "ddr");
    EXPECT_NE(fixed, ddr);
    EXPECT_NE(untagged, fixed);
    EXPECT_NE(untagged, ddr);
    EXPECT_EQ(ddr, checkpointFingerprint(ws, ps, "ddr"));
}

class DdrMatrixTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (const char *name : {"fft-simlarge", "stencil-default"}) {
            auto w = findWorkload(name);
            ASSERT_NE(w, nullptr) << name;
            workloads_.push_back(std::move(w));
        }
        kinds_ = {PrefetcherKind::Cbws, PrefetcherKind::Sms};
        char tmpl[] = "/tmp/cbws-dram-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void
    TearDown() override
    {
        const std::string cmd = "rm -rf '" + dir_ + "'";
        if (std::system(cmd.c_str()) != 0)
            ADD_FAILURE() << "cleanup failed: " << cmd;
    }

    ExperimentMatrix
    run(unsigned jobs, const std::string &checkpoint = "")
    {
        MatrixOptions options;
        options.jobs = jobs;
        options.checkpointPath = checkpoint;
        SystemConfig config;
        config.mem.dramBackend = "ddr";
        return runMatrix(workloads_, kinds_, config, 8000, 42,
                         options);
    }

    /**
     * Byte-identity of everything a cell publishes (the JSON report
     * and the checkpoint line are both derived from these fields).
     * Resumed cells lose only the per-bank diagnostic vectors, which
     * are deliberately not checkpointed — comparing the serialised
     * cell line is exactly the "byte-identical results" contract.
     */
    static ::testing::AssertionResult
    matricesIdentical(const ExperimentMatrix &a,
                      const ExperimentMatrix &b)
    {
        if (a.rows.size() != b.rows.size())
            return ::testing::AssertionFailure() << "row count";
        for (std::size_t r = 0; r < a.rows.size(); ++r) {
            if (a.rows[r].byPrefetcher.size() !=
                b.rows[r].byPrefetcher.size())
                return ::testing::AssertionFailure() << "cell count";
            for (std::size_t k = 0;
                 k < a.rows[r].byPrefetcher.size(); ++k) {
                const auto &x = a.rows[r].byPrefetcher[k];
                const auto &y = b.rows[r].byPrefetcher[k];
                if (checkpointCellLine(x) != checkpointCellLine(y))
                    return ::testing::AssertionFailure()
                           << x.workload << "/" << x.prefetcher
                           << ": serialised cells differ";
            }
        }
        return ::testing::AssertionSuccess();
    }

    std::vector<WorkloadPtr> workloads_;
    std::vector<PrefetcherKind> kinds_;
    std::string dir_;
};

TEST_F(DdrMatrixTest, ResultsAreByteIdenticalAcrossJobCounts)
{
    const ExperimentMatrix serial = run(1);
    const ExperimentMatrix parallel = run(8);
    EXPECT_TRUE(matricesIdentical(serial, parallel));

    // The run exercised the new model for real.
    const auto &cell = serial.rows[0].byPrefetcher[0];
    EXPECT_EQ(cell.dramBackend, "ddr");
    EXPECT_GT(cell.mem.dram.reads, 0u);
    EXPECT_GT(cell.mem.dram.rowHitRate(), 0.0);
}

TEST_F(DdrMatrixTest, PartialCheckpointResumesByteIdentically)
{
    const ExperimentMatrix reference = run(1);

    const std::string path = dir_ + "/ddr.ckpt";
    const ExperimentMatrix full = run(1, path);
    EXPECT_TRUE(matricesIdentical(reference, full));

    // Truncate to header + provenance + 1 cell: the on-disk state
    // a SIGKILL after the first completed cell leaves behind.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 2u + 4u);
    {
        std::ofstream out(path, std::ios::trunc);
        out << lines[0] << "\n" << lines[1] << "\n"
            << lines[2] << "\n";
    }

    for (unsigned jobs : {1u, 8u}) {
        // Re-truncate for each resume so both job counts start from
        // the same partial file.
        const ExperimentMatrix resumed = run(jobs, path);
        EXPECT_TRUE(matricesIdentical(reference, resumed))
            << "jobs=" << jobs;
        std::ofstream out(path, std::ios::trunc);
        out << lines[0] << "\n" << lines[1] << "\n"
            << lines[2] << "\n";
    }
}

} // anonymous namespace
} // namespace cbws
