/**
 * @file
 * Unit tests for the Spatial Memory Streaming prefetcher.
 */

#include <gtest/gtest.h>

#include "prefetch/sms.hh"
#include "test_util.hh"

namespace cbws
{
namespace
{

using test::MockSink;
using test::memCtx;

/** Touch offsets (in lines) inside region @p region (2 KB units). */
void
touchRegion(SmsPrefetcher &pf, MockSink &sink, std::uint64_t region,
            std::initializer_list<unsigned> line_offsets,
            Addr pc = 0x400)
{
    for (unsigned off : line_offsets) {
        pf.observeAccess(
            memCtx(pc, region * 2048 + off * LineBytes), sink);
    }
}

TEST(Sms, LearnsAndReplaysPattern)
{
    SmsParams params;
    params.agtEntries = 2; // force quick generation turnover
    SmsPrefetcher pf(params);
    MockSink sink;

    // Train a generation in region 10 with pattern {0, 3, 7}.
    touchRegion(pf, sink, 10, {0, 3, 7});
    // Generations from *other* trigger PCs evict region 10's
    // generation into the PHT without overwriting its PHT entry.
    touchRegion(pf, sink, 20, {0, 1}, 0x900);
    touchRegion(pf, sink, 30, {0, 1}, 0x900);
    touchRegion(pf, sink, 40, {0, 1}, 0x900);

    // Re-trigger with the same (pc, offset) in a fresh region: the
    // learned pattern streams in.
    sink.issued.clear();
    pf.observeAccess(memCtx(0x400, 99 * 2048 + 0 * LineBytes), sink);
    EXPECT_TRUE(sink.wasIssued(lineOf(99 * 2048 + 3 * LineBytes)));
    EXPECT_TRUE(sink.wasIssued(lineOf(99 * 2048 + 7 * LineBytes)));
    // The trigger line itself is not prefetched.
    EXPECT_FALSE(sink.wasIssued(lineOf(99 * 2048)));
}

TEST(Sms, SingleLineGenerationsDiscarded)
{
    SmsParams params;
    params.filterEntries = 2;
    SmsPrefetcher pf(params);
    MockSink sink;
    // Regions touched on exactly one line churn through the filter
    // and never reach the PHT.
    for (std::uint64_t r = 0; r < 20; ++r)
        touchRegion(pf, sink, r, {0});
    sink.issued.clear();
    pf.observeAccess(memCtx(0x400, 500 * 2048), sink);
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Sms, SameLineTwiceStaysInFilter)
{
    SmsPrefetcher pf;
    MockSink sink;
    // Two accesses to the same line are one spatial point: no
    // generation forms.
    pf.observeAccess(memCtx(0x400, 7 * 2048 + 8), sink);
    pf.observeAccess(memCtx(0x404, 7 * 2048 + 16), sink);
    // Accessing a second line promotes to the AGT.
    pf.observeAccess(memCtx(0x408, 7 * 2048 + 100), sink);
    SUCCEED();
}

TEST(Sms, PatternKeyUsesPcAndOffset)
{
    SmsParams params;
    params.agtEntries = 1;
    SmsPrefetcher pf(params);
    MockSink sink;
    touchRegion(pf, sink, 10, {2, 5}, /*pc=*/0xAAA);
    touchRegion(pf, sink, 20, {0, 1}, /*pc=*/0xAAA); // evicts gen 10

    // Trigger with a different PC at the same offset: no replay.
    sink.issued.clear();
    pf.observeAccess(memCtx(0xBBB, 77 * 2048 + 2 * LineBytes), sink);
    EXPECT_TRUE(sink.issued.empty());
    // Trigger with the training PC/offset: replay.
    pf.observeAccess(memCtx(0xAAA, 88 * 2048 + 2 * LineBytes), sink);
    EXPECT_TRUE(sink.wasIssued(lineOf(88 * 2048 + 5 * LineBytes)));
}

TEST(Sms, DensePatternStreamsWholeRegion)
{
    SmsParams params;
    params.agtEntries = 1;
    SmsPrefetcher pf(params);
    MockSink sink;
    std::initializer_list<unsigned> all = {0,  1,  2,  3,  4,  5,  6,
                                           7,  8,  9,  10, 11, 12, 13,
                                           14, 15, 16, 17, 18, 19, 20,
                                           21, 22, 23, 24, 25, 26, 27,
                                           28, 29, 30, 31};
    touchRegion(pf, sink, 5, all);
    touchRegion(pf, sink, 6, {0, 1}); // evict
    sink.issued.clear();
    pf.observeAccess(memCtx(0x400, 123 * 2048), sink);
    EXPECT_EQ(sink.issued.size(), 31u); // all lines except trigger
}

TEST(Sms, SkipsCachedTargets)
{
    SmsParams params;
    params.agtEntries = 1;
    SmsPrefetcher pf(params);
    MockSink sink;
    touchRegion(pf, sink, 10, {0, 4});
    touchRegion(pf, sink, 20, {0, 1});
    sink.cached.insert(lineOf(44 * 2048 + 4 * LineBytes));
    sink.issued.clear();
    pf.observeAccess(memCtx(0x400, 44 * 2048), sink);
    EXPECT_TRUE(sink.issued.empty());
}

TEST(Sms, RegionGeometry)
{
    SmsPrefetcher pf;
    EXPECT_EQ(pf.linesPerRegion(), 32u); // 2 KB / 64 B
    SmsParams p;
    p.regionBytes = 4096;
    EXPECT_EQ(SmsPrefetcher(p).linesPerRegion(), 64u);
}

TEST(Sms, RejectsOversizedRegions)
{
    SmsParams p;
    p.regionBytes = 8192; // > 64 lines: pattern word too small
    EXPECT_EXIT({ SmsPrefetcher pf(p); }, testing::ExitedWithCode(1),
                "");
}

TEST(Sms, StorageMatchesTable3)
{
    SmsPrefetcher pf;
    // Table III totals 41536 bits (~5 KB).
    EXPECT_EQ(pf.storageBits(), 2848u + 3360u + 35328u);
    EXPECT_NEAR(pf.storageBits() / 8.0 / 1024.0, 5.07, 0.1);
}

TEST(Sms, PhtCapacityBounded)
{
    SmsParams params;
    params.agtEntries = 1;
    params.phtEntries = 8;
    params.phtAssoc = 2;
    SmsPrefetcher pf(params);
    MockSink sink;
    // Flood the PHT with many patterns; it must keep functioning.
    for (std::uint64_t r = 0; r < 64; ++r) {
        touchRegion(pf, sink, r * 2 + 1, {0, static_cast<unsigned>(
                                                 1 + r % 31)});
        touchRegion(pf, sink, r * 2 + 2, {0, 1});
    }
    SUCCEED();
}

} // anonymous namespace
} // namespace cbws
