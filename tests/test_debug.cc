/**
 * @file
 * Unit tests of the trace-flag debug facility (base/debug.hh):
 * flag-list parsing, the enable/window gates DPRINTF relies on, and
 * the no-output-when-disabled guarantee.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "base/debug.hh"

namespace cbws
{
namespace
{

/** Resets global debug state around every test. */
class DebugTest : public ::testing::Test
{
  protected:
    void SetUp() override { debug::reset(); }
    void TearDown() override { debug::reset(); }
};

/** Capture everything DPRINTF writes while in scope (via tmpfile). */
class CaptureOutput
{
  public:
    CaptureOutput() : file_(std::tmpfile())
    {
        debug::setOutput(file_);
    }

    ~CaptureOutput()
    {
        debug::setOutput(nullptr);
        if (file_)
            std::fclose(file_);
    }

    std::string
    contents()
    {
        std::string out;
        if (!file_)
            return out;
        std::fflush(file_);
        std::rewind(file_);
        char buf[256];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), file_)) > 0)
            out.append(buf, n);
        return out;
    }

  private:
    std::FILE *file_;
};

TEST_F(DebugTest, DisabledByDefault)
{
    EXPECT_EQ(debug::state.mask, 0u);
    EXPECT_FALSE(debug::state.anyEnabled);
    EXPECT_FALSE(debug::active(debug::Flag::Cache));
}

TEST_F(DebugTest, SetFlagsParsesCommaSeparatedList)
{
    EXPECT_TRUE(debug::setFlags("Cache,CBWS,Core"));
    EXPECT_TRUE(debug::state.anyEnabled);
    EXPECT_TRUE(debug::active(debug::Flag::Cache));
    EXPECT_TRUE(debug::active(debug::Flag::CBWS));
    EXPECT_TRUE(debug::active(debug::Flag::Core));
    EXPECT_FALSE(debug::active(debug::Flag::SMS));
    EXPECT_FALSE(debug::active(debug::Flag::Prefetch));
}

TEST_F(DebugTest, SetFlagsSkipsEmptySegments)
{
    EXPECT_TRUE(debug::setFlags(",Cache,,SMS,"));
    EXPECT_TRUE(debug::active(debug::Flag::Cache));
    EXPECT_TRUE(debug::active(debug::Flag::SMS));
}

TEST_F(DebugTest, SetFlagsRejectsUnknownNameKeepingEarlierFlags)
{
    std::string err;
    EXPECT_FALSE(debug::setFlags("Cache,NoSuchFlag,SMS", &err));
    EXPECT_NE(err.find("NoSuchFlag"), std::string::npos);
    // Flags before the bad name stay enabled; later ones do not.
    EXPECT_TRUE(debug::active(debug::Flag::Cache));
    EXPECT_FALSE(debug::active(debug::Flag::SMS));
    EXPECT_TRUE(debug::state.anyEnabled);
}

TEST_F(DebugTest, FlagNamesCoverEveryFlag)
{
    const auto names = debug::flagNames();
    ASSERT_EQ(names.size(), 9u);
    for (const auto &name : names)
        EXPECT_TRUE(debug::setFlags(name)) << name;
}

TEST_F(DebugTest, WindowGatesActive)
{
    ASSERT_TRUE(debug::setFlags("Prefetch"));
    debug::setWindow(100, 200);

    debug::setCycle(99);
    EXPECT_FALSE(debug::active(debug::Flag::Prefetch));
    debug::setCycle(100); // start is inclusive
    EXPECT_TRUE(debug::active(debug::Flag::Prefetch));
    debug::setCycle(199);
    EXPECT_TRUE(debug::active(debug::Flag::Prefetch));
    debug::setCycle(200); // end is exclusive
    EXPECT_FALSE(debug::active(debug::Flag::Prefetch));
}

TEST_F(DebugTest, DprintfWritesLineWithCycleAndFlag)
{
    CaptureOutput capture;
    ASSERT_TRUE(debug::setFlags("Cache"));
    debug::setCycle(42);
    DPRINTF(Cache, "hello %d", 7);
    const std::string out = capture.contents();
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("Cache: hello 7"), std::string::npos);
}

TEST_F(DebugTest, NoOutputWhenDisabled)
{
    CaptureOutput capture;
    debug::setCycle(42);
    DPRINTF(Cache, "must not appear %d", 1);
    EXPECT_TRUE(capture.contents().empty());
}

TEST_F(DebugTest, NoOutputOutsideWindow)
{
    CaptureOutput capture;
    ASSERT_TRUE(debug::setFlags("Cache"));
    debug::setWindow(10, 20);
    debug::setCycle(30);
    DPRINTF(Cache, "outside the window");
    EXPECT_TRUE(capture.contents().empty());
}

TEST_F(DebugTest, NoOutputForDisabledFlagWhenOthersEnabled)
{
    CaptureOutput capture;
    ASSERT_TRUE(debug::setFlags("SMS"));
    DPRINTF(Cache, "wrong flag");
    EXPECT_TRUE(capture.contents().empty());
    DPRINTF(SMS, "right flag");
    EXPECT_FALSE(capture.contents().empty());
}

TEST_F(DebugTest, ArgumentsNotEvaluatedWhenDisabled)
{
    int evaluations = 0;
    auto touch = [&evaluations] { return ++evaluations; };
    DPRINTF(Cache, "side effect %d", touch());
    EXPECT_EQ(evaluations, 0);

    ASSERT_TRUE(debug::setFlags("Cache"));
    CaptureOutput capture;
    DPRINTF(Cache, "side effect %d", touch());
    EXPECT_EQ(evaluations, 1);
}

TEST_F(DebugTest, ResetClearsFlagsWindowAndOutput)
{
    ASSERT_TRUE(debug::setFlags("Cache,MSHR"));
    debug::setWindow(5, 6);
    debug::reset();
    EXPECT_EQ(debug::state.mask, 0u);
    EXPECT_FALSE(debug::state.anyEnabled);
    EXPECT_EQ(debug::state.start, 0u);
    EXPECT_EQ(debug::state.end, ~Cycle(0));
    EXPECT_EQ(debug::state.out, nullptr);
}

} // anonymous namespace
} // namespace cbws
