/**
 * @file
 * String-keyed prefetcher registry: every scheme the paper evaluates
 * (plus the extensions) must be registered under its figure-legend
 * name, resolve case-insensitively, and build the same prefetcher
 * the PrefetcherKind compat shim builds — identical name() and
 * Table III storageBits().
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "prefetch/registry.hh"
#include "sim/config.hh"

namespace cbws
{
namespace
{

TEST(PrefetcherRegistry, EveryKindRoundTripsThroughTheRegistry)
{
    for (PrefetcherKind kind : extendedPrefetcherKinds()) {
        const std::string name = toString(kind);
        ASSERT_TRUE(prefetcherRegistry().contains(name)) << name;

        SystemConfig config;
        config.prefetcher = kind;
        const auto via_shim = makePrefetcher(config);
        ASSERT_NE(via_shim, nullptr) << name;

        Result<std::unique_ptr<Prefetcher>> via_registry =
            prefetcherRegistry().create(name, paramSetFrom(config));
        ASSERT_TRUE(via_registry.ok())
            << name << ": " << via_registry.error().str();
        const auto &direct = via_registry.value();
        EXPECT_EQ(direct->name(), via_shim->name()) << name;
        EXPECT_EQ(direct->storageBits(), via_shim->storageBits())
            << name;
    }
}

TEST(PrefetcherRegistry, AllNineSchemesAreRegistered)
{
    const char *expected[] = {
        "No-Prefetch", "Stride",   "GHB-PC/DC",
        "GHB-G/DC",    "SMS",      "CBWS",
        "CBWS+SMS",    "AMPM",     "CBWS+AMPM",
    };
    const auto names = prefetcherRegistry().names();
    EXPECT_GE(names.size(), 9u);
    for (const char *name : expected) {
        EXPECT_TRUE(prefetcherRegistry().contains(name)) << name;
        EXPECT_FALSE(prefetcherRegistry().describe(name).empty())
            << name << " needs a --scheme help description";
    }
}

TEST(PrefetcherRegistry, LookupIsCaseInsensitive)
{
    for (const char *spelling :
         {"cbws+sms", "CBWS+SMS", "Cbws+Sms", "ghb-pc/dc",
          "no-prefetch", "stride", "STRIDE"}) {
        EXPECT_TRUE(prefetcherRegistry().contains(spelling))
            << spelling;
        Result<std::unique_ptr<Prefetcher>> r =
            prefetcherRegistry().create(spelling);
        EXPECT_TRUE(r.ok()) << spelling;
    }

    // The instantiated scheme is the same one regardless of case.
    auto lower = prefetcherRegistry().create("cbws+sms");
    auto upper = prefetcherRegistry().create("CBWS+SMS");
    ASSERT_TRUE(lower.ok());
    ASSERT_TRUE(upper.ok());
    EXPECT_EQ(lower.value()->name(), upper.value()->name());
}

TEST(PrefetcherRegistry, UnknownNameListsTheRegisteredSchemes)
{
    Result<std::unique_ptr<Prefetcher>> r =
        prefetcherRegistry().create("markov");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::NotFound);
    // The error is the user's discovery surface: it must name what
    // was asked for and what exists.
    EXPECT_NE(r.error().message.find("markov"), std::string::npos);
    EXPECT_NE(r.error().message.find("CBWS+SMS"), std::string::npos);
    EXPECT_NE(r.error().message.find("Stride"), std::string::npos);
}

TEST(PrefetcherRegistry, ParamsReachTheFactory)
{
    // A non-default degree must change the built prefetcher's
    // hardware budget exactly as it does through the enum shim.
    SystemConfig config;
    config.prefetcher = PrefetcherKind::Stride;
    config.stride.tableEntries = 1024; // default is smaller

    const auto via_shim = makePrefetcher(config);
    auto via_registry =
        prefetcherRegistry().create("Stride", paramSetFrom(config));
    ASSERT_TRUE(via_registry.ok());
    EXPECT_EQ(via_registry.value()->storageBits(),
              via_shim->storageBits());

    // And differs from the Table II default-parameter build.
    auto default_build = prefetcherRegistry().create("Stride");
    ASSERT_TRUE(default_build.ok());
    EXPECT_NE(via_registry.value()->storageBits(),
              default_build.value()->storageBits());
}

TEST(PrefetcherRegistry, DuplicateRegistrationWarnsWhenNotStrict)
{
    // In warn mode the first registration wins; a duplicate add()
    // reports failure and leaves the original factory in place.
    const bool was_strict =
        prefetcherRegistry().setStrictDuplicates(false);
    const bool added = prefetcherRegistry().add(
        "Stride", "impostor",
        [](const ParamSet &) -> std::unique_ptr<Prefetcher> {
            return nullptr;
        });
    prefetcherRegistry().setStrictDuplicates(was_strict);
    EXPECT_FALSE(added);
    auto r = prefetcherRegistry().create("Stride");
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.value(), nullptr) << "original factory must survive";
    EXPECT_NE(prefetcherRegistry().describe("Stride"), "impostor");
}

using PrefetcherRegistryDeathTest = ::testing::Test;

TEST(PrefetcherRegistryDeathTest, DuplicateRegistrationIsFatalUnderStrict)
{
    // A mistyped self-registration shadowing a real scheme is a
    // build bug, not a runtime condition: strict mode (the tests'
    // default via CBWS_STRICT_REGISTRY=1) makes it fatal.
    EXPECT_DEATH(
        {
            prefetcherRegistry().setStrictDuplicates(true);
            prefetcherRegistry().add(
                "Stride", "impostor",
                [](const ParamSet &) -> std::unique_ptr<Prefetcher> {
                    return nullptr;
                });
        },
        "duplicate registration");
}

} // anonymous namespace
} // namespace cbws
