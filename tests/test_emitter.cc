/**
 * @file
 * Unit tests for the workload Emitter: PC stability, allocation
 * guards, budget tracking and record synthesis.
 */

#include <gtest/gtest.h>

#include "workloads/emitter.hh"

namespace cbws
{
namespace
{

WorkloadParams
params(std::uint64_t insts = 1000, std::uint64_t seed = 1)
{
    WorkloadParams p;
    p.maxInstructions = insts;
    p.seed = seed;
    return p;
}

TEST(Emitter, StablePcsPerSite)
{
    Trace t;
    Emitter e(t, params());
    e.alu(3, 1);
    e.alu(3, 2);
    e.alu(7, 1);
    EXPECT_EQ(t[0].pc, t[1].pc);
    EXPECT_NE(t[0].pc, t[2].pc);
    EXPECT_EQ(e.pcOf(7) - e.pcOf(3), 16u); // 4 bytes per site
}

TEST(Emitter, AllocationsAreDisjoint)
{
    Trace t;
    Emitter e(t, params());
    const Addr a = e.alloc(1000);
    const Addr b = e.alloc(1000);
    const Addr c = e.alloc(64, 4096);
    EXPECT_GE(b, a + 1000); // guard gap between arrays
    EXPECT_EQ(c % 4096, 0u); // alignment honoured
    EXPECT_GT(c, b);
}

TEST(Emitter, BudgetSignalledViaFull)
{
    Trace t;
    Emitter e(t, params(10));
    unsigned emitted = 0;
    while (!e.full()) {
        e.alu(1, 1);
        ++emitted;
    }
    // full() allows the documented slack past maxInstructions.
    EXPECT_GE(emitted, 10u);
    EXPECT_LE(emitted, 10u + 256u);
}

TEST(Emitter, RecordKindsAndOperands)
{
    Trace t;
    Emitter e(t, params());
    e.load(1, 0x1234, 5, 6, 4);
    e.store(2, 0x2000, 7, 8, 8);
    e.branch(3, true, 1, 9);
    e.mul(4, 10, 11, 12);
    e.fp(5, 13, 14);
    e.blockBegin(6, 42);
    e.blockEnd(7, 42);

    EXPECT_EQ(t[0].cls, InstClass::Load);
    EXPECT_EQ(t[0].effAddr, 0x1234u);
    EXPECT_EQ(t[0].dest, 5);
    EXPECT_EQ(t[0].src1, 6);
    EXPECT_EQ(t[0].size, 4);

    EXPECT_EQ(t[1].cls, InstClass::Store);
    EXPECT_EQ(t[1].src1, 7);

    EXPECT_EQ(t[2].cls, InstClass::Branch);
    EXPECT_TRUE(t[2].taken);
    EXPECT_EQ(t[2].effAddr, e.pcOf(1));

    EXPECT_EQ(t[3].cls, InstClass::IntMul);
    EXPECT_EQ(t[4].cls, InstClass::FpAlu);
    EXPECT_EQ(t[5].cls, InstClass::BlockBegin);
    EXPECT_EQ(t[5].blockId, 42);
    EXPECT_EQ(t[6].cls, InstClass::BlockEnd);
}

TEST(Emitter, TempRegistersRotateInRange)
{
    Trace t;
    Emitter e(t, params());
    RegIndex first = e.temp();
    bool repeated = false;
    for (int i = 0; i < 40; ++i) {
        const RegIndex r = e.temp();
        EXPECT_GE(r, 40);
        EXPECT_LT(r, 56);
        repeated = repeated || r == first;
    }
    EXPECT_TRUE(repeated); // cycles through the pool
}

TEST(Emitter, RngSeededFromParams)
{
    Trace t1, t2, t3;
    Emitter a(t1, params(1000, 5)), b(t2, params(1000, 5)),
        c(t3, params(1000, 6));
    EXPECT_EQ(a.rng().next(), b.rng().next());
    Emitter d(t1, params(1000, 5));
    EXPECT_NE(d.rng().next(), c.rng().next());
}

} // anonymous namespace
} // namespace cbws
