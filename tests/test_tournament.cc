/**
 * @file
 * Tournament harness: the ranked zoo must be a deterministic pure
 * function of (workloads, options) — byte-identical leaderboard and
 * JSON at any job count — with a sane leaderboard (No-Prefetch
 * scores 1.0, ranks dense, scores sorted) and non-degenerate zoo
 * schemes (each extension prefetcher actually issues and fills).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "prefetch/registry.hh"
#include "sim/simulator.hh"
#include "sim/tournament.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace
{

/** A tournament small enough to race inside a unit test. */
std::vector<WorkloadPtr>
smallField()
{
    std::vector<WorkloadPtr> workloads = memoryIntensiveWorkloads();
    workloads.resize(3);
    return workloads;
}

TournamentOptions
smallOptions()
{
    TournamentOptions options;
    options.schemes = {"Stride", "CBWS+SMS", "Multistride",
                       "Pangloss"};
    options.coreCounts = {1, 2};
    options.insts = 6000;
    return options;
}

TEST(Tournament, ByteIdenticalAcrossJobCounts)
{
    TournamentOptions serial = smallOptions();
    serial.matrix.jobs = 1;
    TournamentOptions threaded = smallOptions();
    threaded.matrix.jobs = 8;

    const auto workloads = smallField();
    const TournamentResult a = runTournament(workloads, serial);
    const TournamentResult b = runTournament(workloads, threaded);

    EXPECT_EQ(leaderboardTable(a), leaderboardTable(b));
    // Provenance off: the JSON must compare across the two runs even
    // if the test binary were rebuilt in between.
    EXPECT_EQ(tournamentJson(a, /*provenance=*/false),
              tournamentJson(b, /*provenance=*/false));
}

TEST(Tournament, LeaderboardRanksAreDenseAndSorted)
{
    const TournamentResult result =
        runTournament(smallField(), smallOptions());

    // The baseline is always raced, even though smallOptions() does
    // not list it, and its speedup over itself is exactly 1.
    ASSERT_EQ(result.schemes.size(), 5u);
    EXPECT_EQ(result.schemes.front(), "No-Prefetch");
    ASSERT_EQ(result.leaderboard.size(), result.schemes.size());

    bool saw_baseline = false;
    for (std::size_t i = 0; i < result.leaderboard.size(); ++i) {
        const TournamentEntry &entry = result.leaderboard[i];
        EXPECT_EQ(entry.rank, i + 1);
        EXPECT_GT(entry.score, 0.0) << entry.scheme;
        if (i > 0) {
            EXPECT_LE(entry.score, result.leaderboard[i - 1].score)
                << entry.scheme;
        }
        if (entry.scheme == "No-Prefetch") {
            saw_baseline = true;
            EXPECT_DOUBLE_EQ(entry.score, 1.0);
            EXPECT_EQ(entry.storageBits, 0u);
        }
    }
    EXPECT_TRUE(saw_baseline);
}

TEST(Tournament, CellsCoverEverySchemeSuiteAndCoreCount)
{
    const auto workloads = smallField();
    const TournamentResult result =
        runTournament(workloads, smallOptions());

    ASSERT_FALSE(result.suites.empty());
    // Every (scheme, suite, cores) combination gets exactly one cell.
    EXPECT_EQ(result.cells.size(), result.schemes.size() *
                                       result.suites.size() *
                                       result.coreCounts.size());
    std::uint64_t rows = 0;
    for (const TournamentCell &cell : result.cells) {
        EXPECT_GT(cell.workloads, 0u)
            << cell.scheme << "/" << cell.suite;
        EXPECT_GT(cell.speedup, 0.0)
            << cell.scheme << "/" << cell.suite;
        rows += cell.workloads;
    }
    EXPECT_EQ(rows, workloads.size() * result.schemes.size() *
                        result.coreCounts.size());
}

TEST(Tournament, JsonCarriesSchemaVersionAndNoProvenanceWhenOff)
{
    const TournamentResult result =
        runTournament(smallField(), smallOptions());
    const std::string with = tournamentJson(result);
    const std::string without =
        tournamentJson(result, /*provenance=*/false);

    for (const char *field :
         {"\"schema_version\"", "\"bench\":\"tournament\"",
          "\"core_counts\"", "\"leaderboard\"", "\"cells\"",
          "\"No-Prefetch\""}) {
        EXPECT_NE(with.find(field), std::string::npos) << field;
        EXPECT_NE(without.find(field), std::string::npos) << field;
    }
    EXPECT_NE(with.find("\"provenance\""), std::string::npos);
    EXPECT_EQ(without.find("\"provenance\""), std::string::npos);
}

TEST(Tournament, UnknownSchemeOrBadOptionDiesBeforeRacing)
{
    TournamentOptions options = smallOptions();
    options.schemes = {"warp-engine"};
    EXPECT_DEATH(runTournament(smallField(), options), "warp-engine");

    options = smallOptions();
    options.config.pfOpts = {"not-a-key=1"};
    EXPECT_DEATH(runTournament(smallField(), options), "not-a-key");
}

TEST(Tournament, ZooSchemesAreNonDegenerate)
{
    // Each extension prefetcher must actually participate: issue
    // prefetches, fill lines, and land at least one timely hit on
    // a stride-friendly kernel.
    const auto workloads = memoryIntensiveWorkloads();
    WorkloadParams params;
    params.maxInstructions = 24000;
    for (const char *scheme :
         {"Multistride", "Pangloss", "Pythia"}) {
        SystemConfig config;
        config.scheme = scheme;
        const SimResult r =
            simulateWorkload(*workloads.front(), config, params);
        const PrefetchLifecycle life = r.mem.pfLifeTotal();
        EXPECT_GT(life.issued, 0u) << scheme;
        EXPECT_GT(life.filled, 0u) << scheme;
        EXPECT_GT(life.demandHitTimely, 0u) << scheme;
        EXPECT_GT(r.prefetcherStorageBits, 0u) << scheme;
    }
}

} // anonymous namespace
} // namespace cbws
