/**
 * @file
 * Unit tests for the CBWS value types: working-set vectors and
 * differentials (Section IV, Eq. 1-2 of the paper).
 */

#include <gtest/gtest.h>

#include "core/cbws_types.hh"

namespace cbws
{
namespace
{

TEST(CbwsVector, OrderedDistinctMembers)
{
    CbwsVector v;
    EXPECT_EQ(v.push(0x120, 16), CbwsVector::Push::Added);
    EXPECT_EQ(v.push(0x3f9, 16), CbwsVector::Push::Added);
    // Re-access of a member does not change the set (Eq. 1: unique
    // addresses, time-ordered).
    EXPECT_EQ(v.push(0x120, 16), CbwsVector::Push::Duplicate);
    EXPECT_EQ(v.push(0x1ff, 16), CbwsVector::Push::Added);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 0x120u);
    EXPECT_EQ(v[1], 0x3f9u);
    EXPECT_EQ(v[2], 0x1ffu);
}

TEST(CbwsVector, CapacityOverflow)
{
    CbwsVector v;
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(v.push(i, 16), CbwsVector::Push::Added);
    EXPECT_EQ(v.push(99, 16), CbwsVector::Push::Overflow);
    EXPECT_EQ(v.size(), 16u);
    // Duplicates are still recognised at capacity.
    EXPECT_EQ(v.push(5, 16), CbwsVector::Push::Duplicate);
}

TEST(CbwsVector, ClearAndEquality)
{
    CbwsVector a, b;
    a.push(1, 16);
    b.push(1, 16);
    EXPECT_TRUE(a == b);
    a.push(2, 16);
    EXPECT_FALSE(a == b);
    a.clear();
    EXPECT_TRUE(a.empty());
}

TEST(CbwsDifferential, ElementWiseSubtraction)
{
    // The paper's Table I example: CBWS0 = (120,3F9,1FF),
    // CBWS1 = (124,3F1,1FF) -> delta = (4,-8,0).
    CbwsVector c0, c1;
    c0.push(0x120, 16);
    c0.push(0x3f9, 16);
    c0.push(0x1ff, 16);
    c1.push(0x124, 16);
    c1.push(0x3f1, 16);
    c1.push(0x1ff, 16);
    const auto d = CbwsDifferential::between(c1, c0);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_EQ(d[0], 4);
    EXPECT_EQ(d[1], -8);
    EXPECT_EQ(d[2], 0);
}

TEST(CbwsDifferential, TruncatesToShorterVector)
{
    // Branch divergence: sizes differ; the differential is defined by
    // the smaller CBWS (Section IV-B).
    CbwsVector a, b;
    a.push(10, 16);
    a.push(20, 16);
    a.push(30, 16);
    b.push(11, 16);
    b.push(25, 16);
    const auto d = CbwsDifferential::between(b, a);
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0], 1);
    EXPECT_EQ(d[1], 5);
}

TEST(CbwsDifferential, SixteenBitWraparound)
{
    // Strides are 16-bit in hardware (Fig. 8): an overflowing true
    // stride wraps exactly as the adders would.
    CbwsVector a, b;
    a.push(0, 16);
    b.push(40000, 16); // > 2^15 - 1
    const auto d = CbwsDifferential::between(b, a);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0], static_cast<std::int16_t>(40000));
    EXPECT_LT(d[0], 0); // wrapped negative
}

TEST(CbwsDifferential, StencilExample)
{
    // Fig. 4: consecutive stencil CBWSs differ by (0,0,1024,...).
    CbwsVector c0, c1;
    const std::uint32_t m0[] = {80, 81, 6515, 4467, 5499, 5483, 5491};
    const std::uint32_t m1[] = {80, 81, 7539, 5491, 6523, 6507, 6515};
    for (auto m : m0)
        c0.push(m, 16);
    for (auto m : m1)
        c1.push(m, 16);
    const auto d = CbwsDifferential::between(c1, c0);
    ASSERT_EQ(d.size(), 7u);
    EXPECT_EQ(d[0], 0);
    EXPECT_EQ(d[1], 0);
    for (std::size_t i = 2; i < 7; ++i)
        EXPECT_EQ(d[i], 1024);
}

TEST(CbwsDifferential, IncrementalAppendMatchesBetween)
{
    CbwsVector prev, curr;
    for (std::uint32_t i = 0; i < 8; ++i) {
        prev.push(i * 100, 16);
        curr.push(i * 100 + 7, 16);
    }
    CbwsDifferential incremental;
    for (std::size_t i = 0; i < curr.size(); ++i) {
        incremental.append(
            static_cast<std::int16_t>(curr[i] - prev[i]));
    }
    EXPECT_TRUE(incremental ==
                CbwsDifferential::between(curr, prev));
}

TEST(CbwsDifferential, HashStableAndDiscriminating)
{
    CbwsDifferential a, b, c;
    for (int i = 0; i < 5; ++i) {
        a.append(static_cast<std::int16_t>(i));
        b.append(static_cast<std::int16_t>(i));
        c.append(static_cast<std::int16_t>(i + 1));
    }
    EXPECT_EQ(a.hashBits(12), b.hashBits(12));
    EXPECT_NE(a.hashBits(12), c.hashBits(12));
    EXPECT_LT(a.hashBits(12), 1u << 12);
    EXPECT_LT(a.hashBits(8), 1u << 8);
}

TEST(CbwsDifferential, HashSensitiveToOrder)
{
    CbwsDifferential ab, ba;
    ab.append(3);
    ab.append(7);
    ba.append(7);
    ba.append(3);
    EXPECT_NE(ab.hashBits(12), ba.hashBits(12));
}

TEST(CbwsDifferential, IdentityHashSeparatesSizes)
{
    CbwsDifferential short_d, long_d;
    short_d.append(5);
    long_d.append(5);
    long_d.append(0);
    EXPECT_NE(short_d.identityHash(), long_d.identityHash());
}

TEST(CbwsDifferential, EmptyDifferential)
{
    CbwsDifferential d;
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.hashBits(12), d.hashBits(12)); // stable on empty
    const auto e = CbwsDifferential::between(CbwsVector(),
                                             CbwsVector());
    EXPECT_TRUE(e.empty());
}

} // anonymous namespace
} // namespace cbws
