/**
 * @file
 * The scheme-parameter API: ParamSchema bindings, `--pf-opt`
 * key=value parsing, composite scoping, and the describe() seam.
 * Every failure must be a Result error naming the offending key —
 * these strings are the CLI's user-facing diagnostics.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/cbws_prefetcher.hh"
#include "prefetch/registry.hh"
#include "sim/config.hh"

namespace cbws
{
namespace
{

TEST(ParamSchema, AppliesValuesOntoTheParamStruct)
{
    ParamSet params;
    const ParamSchema schema = cbwsParamSchema();
    ASSERT_TRUE(schema.accepts("table-entries"));
    Result<void> r = schema.apply(params, "table-entries", "64");
    ASSERT_TRUE(r.ok()) << r.error().str();
    EXPECT_EQ(params.getOr<CbwsParams>().tableEntries, 64u);

    // A second key composes onto the same struct.
    r = schema.apply(params, "num-steps", "2");
    ASSERT_TRUE(r.ok()) << r.error().str();
    EXPECT_EQ(params.getOr<CbwsParams>().tableEntries, 64u);
    EXPECT_EQ(params.getOr<CbwsParams>().numSteps, 2u);
}

TEST(ParamSchema, UnknownKeyIsNotFoundAndNamesTheKey)
{
    ParamSet params;
    Result<void> r =
        cbwsParamSchema().apply(params, "warp-drive", "9");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::NotFound);
    EXPECT_NE(r.error().message.find("warp-drive"),
              std::string::npos);
}

TEST(ParamSchema, MalformedValuesAreInvalidArgument)
{
    ParamSet params;
    const ParamSchema schema = cbwsParamSchema();
    // uint key: junk, negative, and trailing garbage all fail.
    for (const char *bad : {"abc", "-3", "12abc", ""}) {
        Result<void> r =
            schema.apply(params, "table-entries", bad);
        ASSERT_FALSE(r.ok()) << "'" << bad << "' must not parse";
        EXPECT_EQ(r.code(), Errc::InvalidArgument) << bad;
        EXPECT_NE(r.error().message.find("table-entries"),
                  std::string::npos)
            << "error must name the key for '" << bad << "'";
    }
    // bool key rejects non-boolean text.
    Result<void> r = schema.apply(params, "train-on-hits", "maybe");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::InvalidArgument);

    // Nothing was written through the failing applications.
    EXPECT_EQ(params.getOr<CbwsParams>().tableEntries,
              CbwsParams().tableEntries);
}

TEST(ParamSchema, BoolKeysAcceptTheUsualSpellings)
{
    ParamSet params;
    const ParamSchema schema = cbwsParamSchema();
    for (const char *yes : {"1", "true", "on", "yes"}) {
        ASSERT_TRUE(
            schema.apply(params, "train-on-hits", yes).ok());
        EXPECT_TRUE(params.getOr<CbwsParams>().trainOnHits) << yes;
    }
    for (const char *no : {"0", "false", "off", "no"}) {
        ASSERT_TRUE(schema.apply(params, "train-on-hits", no).ok());
        EXPECT_FALSE(params.getOr<CbwsParams>().trainOnHits) << no;
    }
}

TEST(ParamApi, OptionsMustBeKeyEqualsValue)
{
    ParamSet params;
    for (const char *bad : {"degree", "=4", "degree=", ""}) {
        Result<void> r = prefetcherRegistry().applyOptions(
            "Stride", params, {bad});
        ASSERT_FALSE(r.ok()) << "'" << bad << "' must be rejected";
        EXPECT_EQ(r.code(), Errc::InvalidArgument) << bad;
        EXPECT_NE(r.error().message.find("key=value"),
                  std::string::npos)
            << bad;
    }
}

TEST(ParamApi, ApplyOptionsRejectsKeysTheSchemeDoesNotAccept)
{
    ParamSet params;
    Result<void> r = prefetcherRegistry().applyOptions(
        "Stride", params, {"region-bytes=4096"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::InvalidArgument);
    // The error lists the scheme and its accepted keys.
    EXPECT_NE(r.error().message.find("Stride"), std::string::npos);
    EXPECT_NE(r.error().message.find("degree"), std::string::npos);

    // The same key is fine when the caller pre-validated against a
    // multi-scheme selection (ignore_unknown).
    r = prefetcherRegistry().applyOptions(
        "Stride", params, {"region-bytes=4096"},
        /*ignore_unknown=*/true);
    EXPECT_TRUE(r.ok());
}

TEST(ParamApi, ValidateOptionsChecksTheWholeSelection)
{
    // A key accepted by any selected scheme passes...
    Result<void> r = prefetcherRegistry().validateOptions(
        {"Stride", "SMS"}, {"region-bytes=4096", "degree=2"});
    EXPECT_TRUE(r.ok()) << r.error().str();

    // ...an unknown key fails naming the accepted keys per scheme...
    r = prefetcherRegistry().validateOptions({"Stride", "SMS"},
                                             {"warp-drive=9"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::InvalidArgument);
    EXPECT_NE(r.error().message.find("warp-drive"),
              std::string::npos);

    // ...a bad value fails even when some scheme accepts the key...
    r = prefetcherRegistry().validateOptions({"Stride"},
                                             {"degree=banana"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::InvalidArgument);

    // ...and an unregistered scheme is NotFound.
    r = prefetcherRegistry().validateOptions({"warp-engine"}, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::NotFound);
}

TEST(ParamApi, CompositeSchemesScopePerComponent)
{
    // cbws.* reaches the CBWS side of CBWS+SMS, sms.* the SMS side;
    // the unscoped spelling is not a composite key.
    const ParamSchema schema =
        prefetcherRegistry().paramSchema("CBWS+SMS");
    EXPECT_TRUE(schema.accepts("cbws.table-entries"));
    EXPECT_TRUE(schema.accepts("sms.region-bytes"));
    EXPECT_FALSE(schema.accepts("table-entries"));
    EXPECT_FALSE(schema.accepts("region-bytes"));

    // Scoped options change the built hardware budget on the right
    // component.
    auto build = [](const std::vector<std::string> &opts) {
        ParamSet params;
        Result<void> applied = prefetcherRegistry().applyOptions(
            "CBWS+SMS", params, opts);
        EXPECT_TRUE(applied.ok()) << applied.error().str();
        auto r = prefetcherRegistry().create("CBWS+SMS", params);
        EXPECT_TRUE(r.ok());
        return r.value()->storageBits();
    };
    const std::uint64_t default_bits = build({});
    EXPECT_NE(build({"cbws.table-entries=64"}), default_bits);
    EXPECT_NE(build({"sms.pht-entries=128"}), default_bits);
}

TEST(ParamApi, DescribeRoundTripsForEveryRegisteredScheme)
{
    // For every scheme: each described key must re-apply its own
    // rendered default successfully, and the resulting build must
    // equal the default-parameter build — i.e. describe() tells the
    // truth about keys, types and defaults.
    for (const auto &name : prefetcherRegistry().names()) {
        const auto keys = prefetcherRegistry().describeParams(name);
        ParamSet params;
        const ParamSchema schema =
            prefetcherRegistry().paramSchema(name);
        for (const auto &info : keys) {
            EXPECT_FALSE(info.type.empty()) << name << "." << info.key;
            EXPECT_FALSE(info.help.empty()) << name << "." << info.key;
            Result<void> r =
                schema.apply(params, info.key, info.defaultValue);
            EXPECT_TRUE(r.ok())
                << name << "." << info.key << " default '"
                << info.defaultValue
                << "' must round-trip: " << r.error().str();
        }
        auto defaults = prefetcherRegistry().create(name);
        auto roundtrip = prefetcherRegistry().create(name, params);
        ASSERT_TRUE(defaults.ok()) << name;
        ASSERT_TRUE(roundtrip.ok()) << name;
        EXPECT_EQ(roundtrip.value()->storageBits(),
                  defaults.value()->storageBits())
            << name;
        EXPECT_EQ(roundtrip.value()->name(),
                  defaults.value()->name())
            << name;
    }
}

TEST(ParamApi, EverySchemeButTheBaselineHasParameters)
{
    for (const auto &name : prefetcherRegistry().names()) {
        const bool baseline = name == "No-Prefetch";
        EXPECT_EQ(prefetcherRegistry().describeParams(name).empty(),
                  baseline)
            << name;
    }
}

TEST(ParamApi, PfOptsFlowThroughSystemConfig)
{
    // The makePrefetcher path: config.pfOpts land on the built
    // scheme (pre-validated keys for other schemes are skipped).
    SystemConfig config;
    config.scheme = "Stride";
    config.pfOpts = {"table-entries=512", "region-bytes=4096"};
    auto pf = makePrefetcher(config);
    SystemConfig defaults;
    defaults.scheme = "Stride";
    auto base = makePrefetcher(defaults);
    EXPECT_NE(pf->storageBits(), base->storageBits());
}

} // anonymous namespace
} // namespace cbws
