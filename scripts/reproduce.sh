#!/usr/bin/env bash
# One-command reproduction: build, test, regenerate every table and
# figure of the paper plus the extension experiments. Outputs land in
# results/.
#
# Usage:
#   scripts/reproduce.sh            # default budget (120k insts/run)
#   CBWS_BENCH_INSTS=300000 scripts/reproduce.sh   # bigger runs
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build 2>&1 | tee results/test_output.txt

for bench in build/bench/*; do
    [ -x "$bench" ] || continue
    name=$(basename "$bench")
    echo "== $name =="
    "$bench" 2>&1 | tee "results/$name.txt"
done

echo
echo "done — per-experiment outputs are in results/; compare against"
echo "EXPERIMENTS.md (paper-vs-measured) and the paper's figures."
