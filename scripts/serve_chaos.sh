#!/usr/bin/env bash
# Chaos acceptance check for cbws-served: start the daemon with the
# serve-worker-kill fault armed so every worker SIGKILLs itself after
# checkpointing one new cell, submit an experiment matrix, and require
#
#   1. the daemon survives the kills (workers respawn off the shard
#      checkpoints and the job completes),
#   2. the sealed report is byte-identical to a serial in-process run
#      of the same spec (cbws-ctl submit --local),
#   3. a resubmission of the same spec is served from the sealed
#      result (deduped ack, no re-simulation),
#   4. a scheduling-throughput record lands in BENCH_served.json.
#
# Usage: scripts/serve_chaos.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
SERVED=$BUILD/tools/cbws-served
CTL=$BUILD/tools/cbws-ctl
[ -x "$SERVED" ] && [ -x "$CTL" ] || {
    echo "error: build $SERVED and $CTL first" >&2
    exit 1
}

WORK=$(mktemp -d /tmp/cbws-serve-chaos.XXXXXX)
SOCK=$WORK/served.sock
DAEMON_PID=
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SPEC=(--workload nw --workload fft-simlarge
      --scheme no-prefetch --scheme cbws --scheme stride
      --insts 40000 --seed 42)

# Serial in-process reference — the bytes the daemon must reproduce.
"$CTL" submit --local "${SPEC[@]}" --output "$WORK/ref.json"

# Daemon under chaos: every worker kills itself (SIGKILL, not a
# catchable signal) right after its first new cell lands in the shard
# checkpoint. CBWS_FAULT_SEED pins the respawn backoff jitter so the
# run is reproducible.
CBWS_FAULT='serve-worker-kill@1' CBWS_FAULT_SEED=7 \
    "$SERVED" --socket "$SOCK" --data-dir "$WORK/data" \
    --workers 2 --max-respawns 20 --verbose \
    > "$WORK/served.out" 2> "$WORK/served.err" &
DAEMON_PID=$!

for i in $(seq 1 200); do
    grep -q '^READY' "$WORK/served.out" 2> /dev/null && break
    kill -0 "$DAEMON_PID" 2> /dev/null || {
        echo "error: daemon exited before READY" >&2
        cat "$WORK/served.err" >&2
        exit 1
    }
    sleep 0.05
done
grep -q '^READY' "$WORK/served.out" || {
    echo "error: daemon never printed READY" >&2
    exit 1
}

# Submit through the chaos daemon; stream to the sealed result and
# drop the scheduling-throughput trend record.
"$CTL" submit --socket "$SOCK" "${SPEC[@]}" \
    --output "$WORK/daemon.json" --bench BENCH_served.json --verbose \
    2> "$WORK/submit.err"

# 1. The kills really happened and were survived.
RESPAWNS=$(grep -c 'respawning' "$WORK/served.err" || true)
echo "worker respawns observed: $RESPAWNS"
[ "$RESPAWNS" -ge 1 ] || {
    echo "error: chaos fault never fired (no respawns logged)" >&2
    cat "$WORK/served.err" >&2
    exit 1
}

# 2. Byte identity against the serial reference.
cmp "$WORK/ref.json" "$WORK/daemon.json" || {
    echo "error: daemon report differs from the serial reference" >&2
    exit 1
}
echo "sealed report is byte-identical to the serial reference"

# 3. Resubmission: served from the sealed result, no simulation.
"$CTL" submit --socket "$SOCK" "${SPEC[@]}" --no-wait \
    > "$WORK/resubmit.ack"
grep -q '"deduped":true' "$WORK/resubmit.ack" || {
    echo "error: resubmission was not deduped" >&2
    cat "$WORK/resubmit.ack" >&2
    exit 1
}
"$CTL" result --socket "$SOCK" \
    --job "$(sed -n 's/.*"job":"\([0-9a-f]*\)".*/\1/p' \
        "$WORK/resubmit.ack")" --output "$WORK/dedup.json"
cmp "$WORK/ref.json" "$WORK/dedup.json"
echo "resubmission deduped and served from the sealed result"

# 4. The trend artifact is present and sane.
[ -s BENCH_served.json ] || {
    echo "error: BENCH_served.json missing" >&2
    exit 1
}
grep -q '"bench":"served_scheduling"' BENCH_served.json
grep -q '"respawns":' BENCH_served.json
cat BENCH_served.json

"$CTL" shutdown --socket "$SOCK" > /dev/null
wait "$DAEMON_PID"
DAEMON_PID=
echo "serve chaos check passed"
