/**
 * @file
 * End-to-end trace pipeline: synthesise -> save (raw + compressed) ->
 * reload -> auto-annotate -> simulate -> dump stats.
 *
 * Demonstrates the persistence and inspection surface of the API:
 * Trace::saveTo / saveCompressed / loadFrom, LoopAnnotator, and the
 * gem5-style statistics dump.
 */

#include <cstdio>
#include <iostream>

#include "sim/simulator.hh"
#include "sim/statsdump.hh"
#include "trace/loop_annotator.hh"
#include "workloads/registry.hh"

using namespace cbws;

namespace
{

long
fileSize(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return -1;
    std::fseek(f, 0, SEEK_END);
    const long n = std::ftell(f);
    std::fclose(f);
    return n;
}

} // anonymous namespace

int
main()
{
    // 1. Synthesise a trace.
    auto workload = findWorkload("lu-ncb-simlarge");
    WorkloadParams params;
    params.maxInstructions = 60000;
    Trace trace;
    workload->generate(trace, params);
    std::printf("synthesised %zu records from %s\n", trace.size(),
                workload->name().c_str());

    // 2. Persist in both formats and compare sizes.
    const std::string raw = "/tmp/cbws_example_raw.cbt";
    const std::string compressed = "/tmp/cbws_example_comp.cbt";
    trace.saveTo(raw);
    trace.saveCompressed(compressed);
    std::printf("raw (CBT1): %ld bytes; compressed (CBT2): %ld bytes "
                "(%.1fx smaller)\n",
                fileSize(raw), fileSize(compressed),
                static_cast<double>(fileSize(raw)) /
                    fileSize(compressed));

    // 3. Reload the compressed trace; verify integrity.
    Trace reloaded;
    if (!reloaded.loadFrom(compressed)) {
        std::fprintf(stderr, "reload failed\n");
        return 1;
    }
    std::printf("reloaded %zu records (%zu annotated iterations)\n",
                reloaded.size(),
                reloaded.countClass(InstClass::BlockBegin));

    // 4. Strip the markers and let the automatic annotator find the
    //    loop again (the LLVM-pass substitution path).
    Trace rawStream;
    for (const auto &rec : reloaded)
        if (!isBlockMarker(rec.cls))
            rawStream.append(rec);
    LoopAnnotator annotator;
    Trace reannotated = annotator.annotate(rawStream);
    std::printf("auto-annotator found %zu tight innermost loop(s)\n\n",
                annotator.loops().size());

    // 5. Simulate the re-annotated trace under CBWS+SMS and print the
    //    full statistics dump.
    SystemConfig config;
    config.scheme = "CBWS+SMS";
    SimResult result = simulate(reannotated, config, 50000);
    result.workload = workload->name() + " (reannotated)";
    dumpStats(std::cout, result);

    std::remove(raw.c_str());
    std::remove(compressed.c_str());
    return 0;
}
