/**
 * @file
 * Prefetcher shootout: run any subset of benchmarks through all
 * seven configurations and print a compact comparison — a command-
 * line version of the paper's evaluation loop.
 *
 * Usage:
 *   prefetcher_shootout                 # the 15 MI benchmarks
 *   prefetcher_shootout nw sgemm-medium # specific benchmarks
 *   prefetcher_shootout --dram=ddr nw   # cycle-level DRAM model
 *   CBWS_BENCH_INSTS=200000 prefetcher_shootout   # bigger runs
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/table.hh"
#include "mem/dram/backend.hh"
#include "sim/experiment.hh"
#include "workloads/registry.hh"

using namespace cbws;

int
main(int argc, char **argv)
{
    std::string dram = "fixed";
    std::vector<WorkloadPtr> workloads;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--dram=", 7) == 0) {
            dram = argv[i] + 7;
            continue;
        }
        auto w = findWorkload(argv[i]);
        if (!w) {
            std::fprintf(stderr, "unknown benchmark '%s'\n",
                         argv[i]);
            return 1;
        }
        workloads.push_back(std::move(w));
    }
    if (workloads.empty())
        workloads = memoryIntensiveWorkloads();
    if (!dramBackendRegistry().contains(dram)) {
        std::fprintf(stderr,
                     "unknown DRAM backend '%s' (see cbws-sim "
                     "--dram help)\n",
                     dram.c_str());
        return 1;
    }

    const std::uint64_t insts = benchInstructionBudget(100000);
    std::printf("running %zu benchmark(s) x 7 prefetchers over "
                "'%s' DRAM, %llu instructions each...\n\n",
                workloads.size(), dram.c_str(),
                static_cast<unsigned long long>(insts));

    SystemConfig config;
    config.mem.dramBackend = dram;
    auto matrix = runMatrix(workloads, allSchemeNames(), config,
                            insts);

    TextTable ipc_table;
    std::vector<std::string> header = {"benchmark (IPC)"};
    for (const auto &scheme : matrix.schemes)
        header.push_back(scheme);
    ipc_table.header(header);
    for (const auto &row : matrix.rows) {
        std::vector<std::string> cells = {row.workload};
        for (const auto &res : row.byPrefetcher)
            cells.push_back(TextTable::num(res.ipc(), 3));
        ipc_table.row(cells);
    }
    std::printf("%s\n", ipc_table.render().c_str());

    TextTable mpki_table;
    header[0] = "benchmark (MPKI)";
    mpki_table.header(header);
    for (const auto &row : matrix.rows) {
        std::vector<std::string> cells = {row.workload};
        for (const auto &res : row.byPrefetcher)
            cells.push_back(TextTable::num(res.mpki(), 2));
        mpki_table.row(cells);
    }
    std::printf("%s\n", mpki_table.render().c_str());

    // The banked model exposes row-buffer locality per scheme; the
    // flat model has no rows, so skip the table there.
    if (dram != "fixed") {
        TextTable hit_table;
        header[0] = "benchmark (row-hit %)";
        hit_table.header(header);
        for (const auto &row : matrix.rows) {
            std::vector<std::string> cells = {row.workload};
            for (const auto &res : row.byPrefetcher)
                cells.push_back(TextTable::num(
                    100.0 * res.mem.dram.rowHitRate(), 1));
            hit_table.row(cells);
        }
        std::printf("%s\n", hit_table.render().c_str());
    }

    // Per-benchmark winner summary.
    std::printf("winners by IPC:\n");
    for (std::size_t r = 0; r < matrix.rows.size(); ++r) {
        const auto &row = matrix.rows[r];
        std::size_t best = 0;
        for (std::size_t k = 1; k < row.byPrefetcher.size(); ++k)
            if (row.byPrefetcher[k].ipc() >
                row.byPrefetcher[best].ipc())
                best = k;
        std::printf("  %-26s %s\n", row.workload.c_str(),
                    row.byPrefetcher[best].prefetcher.c_str());
    }
    return 0;
}
