/**
 * @file
 * Quickstart: simulate one benchmark under two prefetchers and print
 * the headline metrics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark-name]
 *
 * This touches the three core pieces of the public API:
 *   1. workloads  - findWorkload() synthesises an annotated trace;
 *   2. sim        - SystemConfig (Table II defaults) + simulate();
 *   3. metrics    - SimResult (IPC, MPKI, timeliness breakdown).
 */

#include <cstdio>
#include <string>

#include "sim/simulator.hh"
#include "workloads/registry.hh"

using namespace cbws;

int
main(int argc, char **argv)
{
    const std::string name =
        argc > 1 ? argv[1] : "stencil-default";
    auto workload = findWorkload(name);
    if (!workload) {
        std::fprintf(stderr,
                     "unknown benchmark '%s'; try one of:\n",
                     name.c_str());
        for (const auto &w : allWorkloads())
            std::fprintf(stderr, "  %s\n", w->name().c_str());
        return 1;
    }

    // 1. Synthesise the annotated instruction trace.
    WorkloadParams params;
    params.maxInstructions = 100000;
    Trace trace;
    workload->generate(trace, params);
    std::printf("benchmark: %s (%s, %s)\n", workload->name().c_str(),
                workload->suite().c_str(),
                workload->memoryIntensive() ? "memory-intensive"
                                            : "low-MPKI");
    std::printf("trace: %zu records, %zu annotated iterations\n\n",
                trace.size(),
                trace.countClass(InstClass::BlockBegin));

    // 2. Simulate under no-prefetch and under CBWS+SMS.
    for (const char *scheme : {"No-Prefetch", "SMS", "CBWS+SMS"}) {
        SystemConfig config; // Table II defaults
        config.scheme = scheme;
        SimResult r = simulate(trace, config,
                               params.maxInstructions);

        // 3. Report.
        std::printf("%-12s ipc=%.3f  llc-mpki=%.2f  timely=%s  "
                    "wrong=%s  dram=%.2f MB\n",
                    r.prefetcher.c_str(), r.ipc(), r.mpki(),
                    std::to_string(
                        int(100 * r.classFraction(
                                      DemandClass::Timely)))
                            .append("%")
                            .c_str(),
                    std::to_string(int(100 * r.wrongFraction()))
                        .append("%")
                        .c_str(),
                    r.mem.dramBytesRead / 1e6);
    }
    std::printf("\nOn loop-dominated benchmarks the CBWS+SMS row "
                "should show the lowest MPKI and\nhighest IPC — the "
                "paper's headline claim.\n");
    return 0;
}
