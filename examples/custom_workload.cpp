/**
 * @file
 * Shows how to bring your own workload to the framework, two ways:
 *
 *  A. implement the Workload interface with the Emitter (explicit
 *     BLOCK_BEGIN/BLOCK_END annotations — what the paper's LLVM pass
 *     would emit), and
 *  B. build a *raw* trace with plain branches and let the
 *     LoopAnnotator discover and annotate the innermost tight loop
 *     automatically.
 *
 * Both paths produce equivalent traces; the example verifies that by
 * simulating each under the CBWS prefetcher.
 */

#include <cstdio>

#include "sim/simulator.hh"
#include "trace/loop_annotator.hh"
#include "workloads/emitter.hh"

using namespace cbws;

namespace
{

/**
 * A. A custom daxpy-like kernel (y[i] += a * x[i]) built on the
 *    Workload/Emitter API with explicit annotations.
 */
class DaxpyWorkload : public Workload
{
  public:
    std::string name() const override { return "daxpy-custom"; }
    std::string suite() const override { return "example"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 4 * 1024 * 1024;
        const Addr x = e.alloc(n * 8);
        const Addr y = e.alloc(n * 8);
        constexpr RegIndex RI = 1, RX = 3, RY = 4, RS = 5;

        while (!e.full()) {
            // The unrolled-by-4 inner loop, annotated per iteration.
            for (std::uint64_t i = 0; i + 4 <= n && !e.full();
                 i += 4) {
                e.blockBegin(0, /*id=*/0);
                for (unsigned u = 0; u < 4; ++u) {
                    e.load(1 + u * 4, x + (i + u) * 8, RX, RI);
                    e.load(2 + u * 4, y + (i + u) * 8, RY, RI);
                    e.fp(3 + u * 4, RS, RX, RY);
                    e.store(4 + u * 4, y + (i + u) * 8, RS, RI);
                }
                e.alu(17, RI, RI);
                e.branch(18, i + 8 <= n, 1, RI);
                e.blockEnd(19, /*id=*/0);
            }
        }
    }
};

/** B. The same loop as a raw trace: no markers, just branches. */
Trace
rawDaxpyTrace(std::uint64_t max_records)
{
    Trace t;
    const Addr x = 0x10000000, y = 0x18000000;
    const Addr header = 0x400000;
    std::uint64_t i = 0;
    while (t.size() + 20 < max_records) {
        Addr pc = header;
        for (unsigned u = 0; u < 4; ++u) {
            t.append(TraceRecord::load(pc, x + (i + u) * 8, 3, 1));
            t.append(
                TraceRecord::load(pc + 4, y + (i + u) * 8, 4, 1));
            t.append(TraceRecord::fp(pc + 8, 5, 3, 4));
            t.append(
                TraceRecord::store(pc + 12, y + (i + u) * 8, 5, 1));
            pc += 16;
        }
        t.append(TraceRecord::alu(pc, 1, 1));
        i += 4;
        t.append(TraceRecord::branch(pc + 4,
                                     t.size() + 40 < max_records,
                                     header, 1));
    }
    return t;
}

} // anonymous namespace

int
main()
{
    WorkloadParams params;
    params.maxInstructions = 60000;

    // Path A: explicit annotations via the Emitter.
    DaxpyWorkload daxpy;
    Trace annotated;
    daxpy.generate(annotated, params);

    // Path B: raw trace + automatic loop detection.
    Trace raw = rawDaxpyTrace(params.maxInstructions);
    LoopAnnotator annotator;
    Trace auto_annotated = annotator.annotate(raw);
    std::printf("LoopAnnotator found %zu tight innermost loop(s)\n",
                annotator.loops().size());
    for (const auto &loop : annotator.loops()) {
        std::printf("  header pc=%#llx, closing branch pc=%#llx, "
                    "%llu iterations\n",
                    static_cast<unsigned long long>(loop.headerPc),
                    static_cast<unsigned long long>(loop.branchPc),
                    static_cast<unsigned long long>(
                        loop.iterations));
    }

    SystemConfig config;
    config.scheme = "CBWS";
    SimResult a = simulate(annotated, config, 50000);
    SimResult b = simulate(auto_annotated, config, 50000);
    SystemConfig nopf;
    SimResult base = simulate(annotated, nopf, 50000);

    std::printf("\n%-28s ipc=%.3f mpki=%.2f\n", "no-prefetch",
                base.ipc(), base.mpki());
    std::printf("%-28s ipc=%.3f mpki=%.2f\n",
                "CBWS (explicit markers)", a.ipc(), a.mpki());
    std::printf("%-28s ipc=%.3f mpki=%.2f\n",
                "CBWS (auto-annotated)", b.ipc(), b.mpki());
    std::printf("\nThe two annotation paths behave equivalently: "
                "the pass's only architectural\nproduct is marker "
                "placement (DESIGN.md, substitution table).\n");
    return 0;
}
