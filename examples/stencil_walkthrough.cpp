/**
 * @file
 * Walkthrough of the paper's motivating example (Section II): the
 * Parboil 3D stencil.
 *
 * Steps through the whole CBWS story on one workload:
 *   1. show the working sets of consecutive loop iterations and
 *      their constant differential (Figs. 3-4);
 *   2. show the skew of the differential distribution (Fig. 5);
 *   3. compare GHB PC/DC's conservative miss-triggered coverage with
 *      CBWS's whole-iteration prefetching (the Fig. 3 highlight);
 *   4. print the end-to-end speedups.
 */

#include <cstdio>
#include <vector>

#include "core/cbws_types.hh"
#include "sim/simulator.hh"
#include "workloads/registry.hh"

using namespace cbws;

int
main()
{
    auto workload = findWorkload("stencil-default");
    WorkloadParams params;
    params.maxInstructions = 80000;
    Trace trace;
    workload->generate(trace, params);

    // ---- 1. Working sets of consecutive iterations ----
    std::printf("== CBWS vectors of consecutive stencil iterations "
                "==\n");
    std::vector<CbwsVector> cbwss;
    CbwsVector current;
    bool in_block = false;
    for (const auto &rec : trace) {
        if (rec.cls == InstClass::BlockBegin) {
            current.clear();
            in_block = true;
        } else if (rec.cls == InstClass::BlockEnd && in_block) {
            cbwss.push_back(current);
            in_block = false;
            if (cbwss.size() > 16)
                break;
        } else if (in_block && isMemory(rec.cls)) {
            current.push(static_cast<std::uint32_t>(rec.line()), 16);
        }
    }
    for (std::size_t i = 10; i < 14 && i < cbwss.size(); ++i) {
        std::printf("  iter %zu: ", i);
        for (std::size_t j = 0; j < cbwss[i].size(); ++j)
            std::printf("%7X", cbwss[i][j]);
        std::printf("\n");
    }
    if (cbwss.size() > 13) {
        const auto d =
            CbwsDifferential::between(cbwss[13], cbwss[12]);
        std::printf("  differential: ");
        for (std::size_t j = 0; j < d.size(); ++j)
            std::printf("%7d", d[j]);
        std::printf("\n  -> after the two cached coefficient loads, "
                    "every stream advances by the same\n     "
                    "constant stride (the paper's Fig. 4).\n\n");
    }

    // ---- 2. Differential skew (Fig. 5) ----
    SystemConfig cbws_cfg;
    cbws_cfg.scheme = "CBWS";
    FrequencyCounter probe;
    SimProbes probes;
    probes.differentials = &probe;
    SimResult cbws_run = simulate(trace, cbws_cfg,
                                  params.maxInstructions, probes);
    std::printf("== differential distribution ==\n");
    std::printf("  %zu iterations produced %zu distinct "
                "differential vectors;\n",
                static_cast<std::size_t>(probe.total()),
                probe.distinct());
    std::printf("  90%% of iterations are explained by %.1f%% of "
                "the vectors (Fig. 5 skew).\n\n",
                100.0 * probe.vectorsFractionForCoverage(0.90));

    // ---- 3 & 4. Prefetcher comparison ----
    std::printf("== end-to-end comparison ==\n");
    SimResult base;
    for (const char *scheme :
         {"No-Prefetch", "GHB-PC/DC", "SMS", "CBWS", "CBWS+SMS"}) {
        SystemConfig config;
        config.scheme = scheme;
        SimResult r = std::string(scheme) == "CBWS"
                          ? cbws_run
                          : simulate(trace, config,
                                     params.maxInstructions);
        if (std::string(scheme) == "No-Prefetch")
            base = r;
        std::printf("  %-12s ipc=%.3f (%.2fx)  mpki=%6.2f  "
                    "timely=%4.1f%%  wrong=%4.1f%%\n",
                    r.prefetcher.c_str(), r.ipc(),
                    r.ipc() / base.ipc(), r.mpki(),
                    100 * r.classFraction(DemandClass::Timely),
                    100 * r.wrongFraction());
    }
    std::printf("\nGHB PC/DC triggers only on misses with a short "
                "depth, so it keeps missing inside\nthe loop; CBWS "
                "prefetches the complete working set of pending "
                "iterations in\nlock-step and approaches the "
                "no-miss IPC.\n");
    return 0;
}
